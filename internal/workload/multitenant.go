package workload

import (
	"errors"
	"fmt"

	"pipette/internal/sim"
)

// TenantConfig shapes one tenant's share of a multi-tenant stream.
type TenantConfig struct {
	// Weight is the tenant's share of arrivals, relative to the sum of
	// all weights (<= 0 is rejected).
	Weight float64
	// Theta is the tenant's Zipfian skew over its private keyspace;
	// 0 selects a uniform chooser.
	Theta float64
	// ReadFraction of the tenant's requests are reads; the rest are
	// updates of existing records.
	ReadFraction float64
}

// TenantRequest is one draw from the multi-tenant stream: which tenant,
// whether it writes, and which record (an index into the tenant's private
// [0, records) keyspace — namespacing into a flat key is the caller's
// job, via kv.NamespaceKey).
type TenantRequest struct {
	Tenant int
	Write  bool
	Record uint64
}

// MultiTenant interleaves per-tenant request streams: a weighted tenant
// draw, then the chosen tenant's private key chooser with its own skew.
// Each tenant's chooser consumes a private RNG, so one tenant's skew
// setting never perturbs another tenant's key sequence — adding a tenant
// or changing a theta leaves the other tenants' streams byte-identical.
type MultiTenant struct {
	records  uint64
	tenants  []TenantConfig
	cum      []float64 // cumulative weight, normalized to [0,1]
	rng      *sim.RNG  // tenant + read/write draws
	choosers []*KeyChooser
}

// NewMultiTenant builds a stream over len(tenants) private keyspaces of
// `records` records each.
func NewMultiTenant(records uint64, tenants []TenantConfig, seed uint64) (*MultiTenant, error) {
	if records == 0 {
		return nil, errors.New("workload: multi-tenant needs records > 0")
	}
	if len(tenants) == 0 {
		return nil, errors.New("workload: multi-tenant needs at least one tenant")
	}
	var total float64
	for i, tc := range tenants {
		if tc.Weight <= 0 {
			return nil, fmt.Errorf("workload: tenant %d weight %v must be > 0", i, tc.Weight)
		}
		if tc.ReadFraction < 0 || tc.ReadFraction > 1 {
			return nil, fmt.Errorf("workload: tenant %d read fraction %v outside [0,1]", i, tc.ReadFraction)
		}
		total += tc.Weight
	}
	m := &MultiTenant{
		records: records,
		tenants: append([]TenantConfig(nil), tenants...),
		cum:     make([]float64, len(tenants)),
		rng:     sim.NewRNG(seed ^ 0x7e4a_11d7),
	}
	var run float64
	for i, tc := range tenants {
		run += tc.Weight / total
		m.cum[i] = run
	}
	m.cum[len(m.cum)-1] = 1 // absorb rounding
	for i, tc := range tenants {
		dist, theta := Uniform, 0.0
		if tc.Theta > 0 {
			dist, theta = Zipfian, tc.Theta
		}
		kc, err := NewKeyChooser(sim.NewRNG(sim.Mix64(seed^uint64(i)*0x9e3779b97f4a7c15)), dist, records, theta)
		if err != nil {
			return nil, fmt.Errorf("workload: tenant %d: %w", i, err)
		}
		m.choosers = append(m.choosers, kc)
	}
	return m, nil
}

// Tenants reports the tenant count.
func (m *MultiTenant) Tenants() int { return len(m.tenants) }

// Records reports each tenant's private keyspace size.
func (m *MultiTenant) Records() uint64 { return m.records }

// Next draws the next request.
func (m *MultiTenant) Next() TenantRequest {
	u := m.rng.Float64()
	t := 0
	for t < len(m.cum)-1 && u >= m.cum[t] {
		t++
	}
	write := m.rng.Float64() >= m.tenants[t].ReadFraction
	return TenantRequest{Tenant: t, Write: write, Record: m.choosers[t].Next()}
}
