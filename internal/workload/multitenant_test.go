package workload

import (
	"testing"
)

func TestMultiTenantDeterministic(t *testing.T) {
	t.Parallel()
	mk := func() *MultiTenant {
		m, err := NewMultiTenant(1000, []TenantConfig{
			{Weight: 3, Theta: 0.99, ReadFraction: 0.9},
			{Weight: 1, ReadFraction: 0.5},
		}, 7)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		return m
	}
	a, b := mk(), mk()
	for i := 0; i < 5000; i++ {
		if ra, rb := a.Next(), b.Next(); ra != rb {
			t.Fatalf("draw %d diverges: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestMultiTenantShares(t *testing.T) {
	t.Parallel()
	m, err := NewMultiTenant(1000, []TenantConfig{
		{Weight: 3, Theta: 0.99, ReadFraction: 0.9},
		{Weight: 1, ReadFraction: 0.5},
	}, 7)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	const n = 20000
	var counts [2]int
	var writes [2]int
	for i := 0; i < n; i++ {
		r := m.Next()
		counts[r.Tenant]++
		if r.Write {
			writes[r.Tenant]++
		}
		if r.Record >= 1000 {
			t.Fatalf("record %d outside keyspace", r.Record)
		}
	}
	if f := float64(counts[0]) / n; f < 0.70 || f > 0.80 {
		t.Fatalf("tenant 0 drew %.3f of requests, want ~0.75", f)
	}
	if f := float64(writes[0]) / float64(counts[0]); f < 0.07 || f > 0.13 {
		t.Fatalf("tenant 0 wrote %.3f of its requests, want ~0.10", f)
	}
	if f := float64(writes[1]) / float64(counts[1]); f < 0.45 || f > 0.55 {
		t.Fatalf("tenant 1 wrote %.3f of its requests, want ~0.50", f)
	}
}

// Changing one tenant's skew must not perturb another tenant's key
// sequence — each chooser owns a private RNG.
func TestMultiTenantStreamIsolation(t *testing.T) {
	t.Parallel()
	draw := func(theta1 float64) []uint64 {
		m, err := NewMultiTenant(1000, []TenantConfig{
			{Weight: 1, Theta: 0.99, ReadFraction: 1},
			{Weight: 1, Theta: theta1, ReadFraction: 1},
		}, 7)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		var t0 []uint64
		for i := 0; i < 4000; i++ {
			if r := m.Next(); r.Tenant == 0 {
				t0 = append(t0, r.Record)
			}
		}
		return t0
	}
	a, b := draw(0), draw(0.8)
	if len(a) != len(b) {
		t.Fatalf("tenant-0 draw counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tenant 0 key %d diverges when tenant 1's theta changes", i)
		}
	}
}

func TestMultiTenantRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := NewMultiTenant(0, []TenantConfig{{Weight: 1}}, 1); err == nil {
		t.Fatal("zero records accepted")
	}
	if _, err := NewMultiTenant(10, nil, 1); err == nil {
		t.Fatal("no tenants accepted")
	}
	if _, err := NewMultiTenant(10, []TenantConfig{{Weight: 0}}, 1); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewMultiTenant(10, []TenantConfig{{Weight: 1, ReadFraction: 1.5}}, 1); err == nil {
		t.Fatal("read fraction > 1 accepted")
	}
}
