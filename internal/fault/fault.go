// Package fault is the deterministic fault-injection registry of the
// simulated stack. A profile names sites in the I/O path ("nand.read",
// "hmb.ring", ...) and attaches a rule to each: an injection probability
// (or a raw-bit-error-rate multiplier resolved against the media), an
// optional LBA window, and an optional injection budget. An Injector built
// from a profile is consulted by the instrumented layers; every decision is
// drawn from per-site splitmix64 streams seeded by the fault seed, so a run
// is byte-reproducible at any worker count and two engines over identical
// stacks see identical fault sequences.
//
// The nil *Injector is the Nop: every method is nil-safe, Check is a single
// pointer test costing zero allocations, and no RNG state exists at all —
// an empty profile therefore leaves the simulation's RNG draws, timings,
// and output byte-identical to a build without fault injection. This
// mirrors the telemetry package's Nop-tracer design.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"pipette/internal/sim"
)

// Site identifies one injection point in the stack.
type Site int

// The registered fault sites.
const (
	// SiteNANDRead: raw bit errors in a sensed page. Severity selects the
	// ECC outcome (retry depth or uncorrectable).
	SiteNANDRead Site = iota
	// SiteNANDProgram: a program operation fails its verify step and the
	// firmware re-programs the page at a fresh physical address.
	SiteNANDProgram
	// SiteNVMeDMA: a fine-read DMA payload corrupts in flight; the host
	// detects the checksum mismatch and falls back to block I/O.
	SiteNVMeDMA
	// SiteHMBRing: an Info-Area ring record corrupts between host append
	// and device consume; the device detects it and the request falls back.
	SiteHMBRing
	// SiteVFSWriteback: a writeback command reports a transient failure
	// and the flusher re-issues it.
	SiteVFSWriteback

	numSites
)

var siteNames = [numSites]string{
	SiteNANDRead:     "nand.read",
	SiteNANDProgram:  "nand.program",
	SiteNVMeDMA:      "nvme.dma",
	SiteHMBRing:      "hmb.ring",
	SiteVFSWriteback: "vfs.writeback",
}

// String names the site ("nand.read", ...).
func (s Site) String() string {
	if s < 0 || s >= numSites {
		return fmt.Sprintf("Site(%d)", int(s))
	}
	return siteNames[s]
}

// SiteByName resolves a site name.
func SiteByName(name string) (Site, bool) {
	for s, n := range siteNames {
		if n == name {
			return Site(s), true
		}
	}
	return 0, false
}

// Rule is the injection policy of one site.
type Rule struct {
	// Prob is the per-operation injection probability.
	Prob float64
	// RBERMult scales the media's raw bit error rate; the owning layer
	// resolves it into an additional per-operation probability via
	// ResolveRBER (probability += RBERMult * RBER * bitsPerOp).
	RBERMult float64
	// LBAMin/LBAMax window the site to an address range. LBAMax == 0
	// means unbounded above.
	LBAMin, LBAMax uint64
	// MaxCount caps total injections at this site. 0 means unlimited.
	MaxCount uint64
}

// Profile maps sites to rules. The zero Profile is empty and injects
// nothing.
type Profile struct {
	rules [numSites]Rule
	set   [numSites]bool
}

// Empty reports whether no site has a rule.
func (p Profile) Empty() bool {
	for _, s := range p.set {
		if s {
			return false
		}
	}
	return true
}

// Set installs a rule for a site.
func (p *Profile) Set(site Site, r Rule) {
	p.rules[site] = r
	p.set[site] = true
}

// Rule returns a site's rule and whether one is set.
func (p Profile) Rule(site Site) (Rule, bool) { return p.rules[site], p.set[site] }

// String renders the profile back into ParseProfile syntax.
func (p Profile) String() string {
	var parts []string
	for s := Site(0); s < numSites; s++ {
		if !p.set[s] {
			continue
		}
		r := p.rules[s]
		var b strings.Builder
		fmt.Fprintf(&b, "%s:", s)
		if r.RBERMult != 0 {
			fmt.Fprintf(&b, "rber*%g", r.RBERMult)
		} else {
			fmt.Fprintf(&b, "%g", r.Prob)
		}
		if r.LBAMin != 0 || r.LBAMax != 0 {
			fmt.Fprintf(&b, "@%d-%d", r.LBAMin, r.LBAMax)
		}
		if r.MaxCount != 0 {
			fmt.Fprintf(&b, "#%d", r.MaxCount)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ",")
}

// ParseProfile parses the -fault-profile syntax: comma-separated site
// rules of the form
//
//	site:spec[@lo-hi][#count]
//
// where spec is either a probability ("hmb.ring:0.01") or an RBER
// multiplier ("nand.read:rber*20", resolved against the media's datasheet
// rate by the owning layer), @lo-hi windows the rule to an LBA range, and
// #count caps the number of injections. The empty string parses to the
// empty profile.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, ":")
		if !ok {
			return Profile{}, fmt.Errorf("fault: rule %q missing ':'", part)
		}
		site, ok := SiteByName(strings.TrimSpace(name))
		if !ok {
			return Profile{}, fmt.Errorf("fault: unknown site %q (known: %s)",
				name, strings.Join(siteNames[:], ", "))
		}
		var r Rule
		if i := strings.IndexByte(spec, '#'); i >= 0 {
			n, err := strconv.ParseUint(spec[i+1:], 10, 64)
			if err != nil || n == 0 {
				return Profile{}, fmt.Errorf("fault: bad count in %q", part)
			}
			r.MaxCount = n
			spec = spec[:i]
		}
		if i := strings.IndexByte(spec, '@'); i >= 0 {
			lo, hi, ok := strings.Cut(spec[i+1:], "-")
			if !ok {
				return Profile{}, fmt.Errorf("fault: bad LBA range in %q (want @lo-hi)", part)
			}
			var err error
			if r.LBAMin, err = strconv.ParseUint(lo, 10, 64); err != nil {
				return Profile{}, fmt.Errorf("fault: bad LBA range in %q", part)
			}
			if r.LBAMax, err = strconv.ParseUint(hi, 10, 64); err != nil {
				return Profile{}, fmt.Errorf("fault: bad LBA range in %q", part)
			}
			if r.LBAMax < r.LBAMin {
				return Profile{}, fmt.Errorf("fault: empty LBA range in %q", part)
			}
			spec = spec[:i]
		}
		if mult, isRBER := strings.CutPrefix(spec, "rber*"); isRBER {
			m, err := strconv.ParseFloat(mult, 64)
			if err != nil || m <= 0 {
				return Profile{}, fmt.Errorf("fault: bad RBER multiplier in %q", part)
			}
			r.RBERMult = m
		} else {
			prob, err := strconv.ParseFloat(spec, 64)
			if err != nil || prob < 0 || prob > 1 {
				return Profile{}, fmt.Errorf("fault: bad probability in %q (want [0,1] or rber*N)", part)
			}
			r.Prob = prob
		}
		p.Set(site, r)
	}
	return p, nil
}

// Outcome is one Check decision. Sev is only meaningful on a hit: a
// uniform [0,1) draw the site's owner maps onto its failure spectrum
// (e.g. which ECC retry step recovers the page, or which bit flips).
type Outcome struct {
	Hit bool
	Sev float64
}

// siteState is one site's live injection state.
type siteState struct {
	rule     Rule
	prob     float64 // effective per-op probability (Prob + resolved RBER)
	active   bool
	injected uint64
	rng      *sim.RNG
}

// Injector draws injection decisions for a stack. One injector is shared
// by every layer of a stack, so the per-site streams interleave in
// simulation order and the whole run replays from the seed. The nil
// Injector is the allocation-free Nop.
type Injector struct {
	sites [numSites]siteState
}

// siteSalt decorrelates the per-site RNG streams from one seed.
func siteSalt(s Site) uint64 { return sim.Mix64(0xfa17_0000 + uint64(s)*0x9e3779b97f4a7c15) }

// NewInjector builds an injector over the profile, or nil (the Nop) when
// the profile is empty.
func (p Profile) NewInjector(seed uint64) *Injector {
	if p.Empty() {
		return nil
	}
	inj := &Injector{}
	for s := Site(0); s < numSites; s++ {
		st := &inj.sites[s]
		st.rule = p.rules[s]
		st.prob = st.rule.Prob
		st.active = p.set[s] && (st.prob > 0 || st.rule.RBERMult > 0)
		if st.active {
			st.rng = sim.NewRNG(seed ^ siteSalt(s))
		}
	}
	return inj
}

// Enabled reports whether any injection can happen. Layers use it to gate
// validation work (checksumming DMA payloads) that only matters under
// injection.
func (i *Injector) Enabled() bool { return i != nil }

// ResolveRBER folds a media raw bit error rate into a site's effective
// probability: rules written as rber*mult become
// min(1, Prob + mult*rber*bitsPerOp). The owning layer calls this once at
// wiring time with its datasheet RBER and the bits moved per operation.
func (i *Injector) ResolveRBER(site Site, rber float64, bitsPerOp int) {
	if i == nil {
		return
	}
	st := &i.sites[site]
	if !st.active {
		return
	}
	p := st.rule.Prob + st.rule.RBERMult*rber*float64(bitsPerOp)
	if p > 1 {
		p = 1
	}
	st.prob = p
	st.active = p > 0
}

// Check draws one injection decision for site at address addr. Inactive
// sites (and the nil injector) return a miss without consuming any RNG
// state. On a hit a second draw supplies the severity.
func (i *Injector) Check(site Site, addr uint64) Outcome {
	if i == nil {
		return Outcome{}
	}
	st := &i.sites[site]
	if !st.active {
		return Outcome{}
	}
	if st.rule.MaxCount != 0 && st.injected >= st.rule.MaxCount {
		return Outcome{}
	}
	if addr < st.rule.LBAMin || (st.rule.LBAMax != 0 && addr > st.rule.LBAMax) {
		return Outcome{}
	}
	if st.rng.Float64() >= st.prob {
		return Outcome{}
	}
	st.injected++
	return Outcome{Hit: true, Sev: st.rng.Float64()}
}

// Injected reports injections drawn at one site.
func (i *Injector) Injected(site Site) uint64 {
	if i == nil {
		return 0
	}
	return i.sites[site].injected
}

// TotalInjected reports injections drawn across all sites.
func (i *Injector) TotalInjected() uint64 {
	if i == nil {
		return 0
	}
	var n uint64
	for s := range i.sites {
		n += i.sites[s].injected
	}
	return n
}

// Sum32 is FNV-1a over data — the CRC stand-in both ends of the fine-read
// DMA protocol compute to validate payload integrity.
func Sum32(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// Report aggregates a stack's reliability counters: what was injected and
// how each layer recovered. Assembled by the engine facades for the faults
// experiment and the public System report.
type Report struct {
	Injected uint64 // fault decisions drawn across all sites

	ECCRetries    uint64 // NAND read-retry steps charged by the ECC ladder
	Uncorrectable uint64 // reads that exhausted the retry budget

	RingCorruptions uint64 // Info-Area records the device rejected
	DMACorruptions  uint64 // fine-read payloads corrupted in flight
	RingFallbacks   uint64 // fine reads re-served via block I/O (ring)
	DMAFallbacks    uint64 // fine reads re-served via block I/O (DMA)

	ProgramRetries   uint64 // NAND programs re-issued after a verify fail
	WritebackRetries uint64 // writeback commands the flusher re-issued
}
