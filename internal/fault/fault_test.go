package fault

import (
	"testing"
)

func TestParseProfile(t *testing.T) {
	t.Parallel()
	p, err := ParseProfile("nand.read:rber*20, hmb.ring:0.01#100, nvme.dma:0.005@16-4095")
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("profile parsed as empty")
	}
	r, ok := p.Rule(SiteNANDRead)
	if !ok || r.RBERMult != 20 || r.Prob != 0 {
		t.Fatalf("nand.read rule = %+v, set=%v", r, ok)
	}
	r, ok = p.Rule(SiteHMBRing)
	if !ok || r.Prob != 0.01 || r.MaxCount != 100 {
		t.Fatalf("hmb.ring rule = %+v, set=%v", r, ok)
	}
	r, ok = p.Rule(SiteNVMeDMA)
	if !ok || r.Prob != 0.005 || r.LBAMin != 16 || r.LBAMax != 4095 {
		t.Fatalf("nvme.dma rule = %+v, set=%v", r, ok)
	}
	if _, ok := p.Rule(SiteNANDProgram); ok {
		t.Fatal("unset site reported a rule")
	}

	// Round trip through String.
	p2, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2 != p {
		t.Fatalf("round trip changed profile: %q vs %q", p2, p)
	}
}

func TestParseProfileEmpty(t *testing.T) {
	t.Parallel()
	for _, s := range []string{"", "   ", ","} {
		p, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
		if !p.Empty() {
			t.Fatalf("ParseProfile(%q) not empty", s)
		}
		if p.NewInjector(1) != nil {
			t.Fatalf("empty profile built a non-nil injector")
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	t.Parallel()
	for _, s := range []string{
		"nand.read",           // no colon
		"bogus.site:0.5",      // unknown site
		"nand.read:1.5",       // probability out of range
		"nand.read:-0.1",      // negative probability
		"nand.read:rber*",     // missing multiplier
		"nand.read:rber*-3",   // negative multiplier
		"hmb.ring:0.1#0",      // zero count
		"hmb.ring:0.1#x",      // bad count
		"nvme.dma:0.1@5",      // range missing hi
		"nvme.dma:0.1@9-2",    // empty range
		"nvme.dma:0.1@a-b",    // non-numeric range
	} {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("ParseProfile(%q) accepted", s)
		}
	}
}

func TestNilInjectorIsNop(t *testing.T) {
	t.Parallel()
	var inj *Injector
	if inj.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if out := inj.Check(SiteNANDRead, 7); out.Hit {
		t.Fatal("nil injector hit")
	}
	if inj.Injected(SiteNANDRead) != 0 || inj.TotalInjected() != 0 {
		t.Fatal("nil injector counted injections")
	}
	inj.ResolveRBER(SiteNANDRead, 1e-6, 4096*8) // must not panic

	// The acceptance criterion: the Nop path allocates nothing.
	allocs := testing.AllocsPerRun(1000, func() {
		_ = inj.Check(SiteNANDRead, 42)
	})
	if allocs != 0 {
		t.Fatalf("nil injector Check allocates %.1f per op", allocs)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	t.Parallel()
	p, err := ParseProfile("nand.read:0.3,hmb.ring:0.2")
	if err != nil {
		t.Fatal(err)
	}
	a := p.NewInjector(0x5eed)
	b := p.NewInjector(0x5eed)
	for i := 0; i < 10_000; i++ {
		oa := a.Check(SiteNANDRead, uint64(i))
		ob := b.Check(SiteNANDRead, uint64(i))
		if oa != ob {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, oa, ob)
		}
		if i%3 == 0 {
			if oa, ob := a.Check(SiteHMBRing, uint64(i)), b.Check(SiteHMBRing, uint64(i)); oa != ob {
				t.Fatalf("ring draw %d diverged: %+v vs %+v", i, oa, ob)
			}
		}
	}
	if a.TotalInjected() == 0 {
		t.Fatal("no injections at p=0.3 over 10k draws")
	}
	if a.TotalInjected() != b.TotalInjected() {
		t.Fatalf("counts diverged: %d vs %d", a.TotalInjected(), b.TotalInjected())
	}

	// A different seed draws a different sequence.
	c := p.NewInjector(0x5eee)
	diverged := false
	for i := 0; i < 1000; i++ {
		if p.NewInjector(0x5eed).Check(SiteNANDRead, 0) != c.Check(SiteNANDRead, 0) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestInjectorCountCap(t *testing.T) {
	t.Parallel()
	p, _ := ParseProfile("vfs.writeback:1#3")
	inj := p.NewInjector(1)
	hits := 0
	for i := 0; i < 100; i++ {
		if inj.Check(SiteVFSWriteback, uint64(i)).Hit {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("hits = %d with #3 cap, want 3", hits)
	}
	if inj.Injected(SiteVFSWriteback) != 3 {
		t.Fatalf("Injected = %d, want 3", inj.Injected(SiteVFSWriteback))
	}
}

func TestInjectorLBAWindow(t *testing.T) {
	t.Parallel()
	p, _ := ParseProfile("nand.read:1@100-199")
	inj := p.NewInjector(1)
	if inj.Check(SiteNANDRead, 99).Hit {
		t.Fatal("hit below window")
	}
	if inj.Check(SiteNANDRead, 200).Hit {
		t.Fatal("hit above window")
	}
	if !inj.Check(SiteNANDRead, 100).Hit || !inj.Check(SiteNANDRead, 199).Hit {
		t.Fatal("miss inside window at p=1")
	}
}

func TestResolveRBER(t *testing.T) {
	t.Parallel()
	p, _ := ParseProfile("nand.read:rber*10")
	inj := p.NewInjector(1)
	// Before resolution the rber-only rule has probability 0: no hits, and
	// crucially no RNG draws.
	if inj.Check(SiteNANDRead, 0).Hit {
		t.Fatal("hit before RBER resolution")
	}
	inj.ResolveRBER(SiteNANDRead, 1e-7, 4096*8) // 10 * 1e-7 * 32768 ≈ 0.033
	hits := 0
	for i := 0; i < 100_000; i++ {
		if inj.Check(SiteNANDRead, uint64(i)).Hit {
			hits++
		}
	}
	// Expect ~3277 hits; accept a generous band.
	if hits < 2000 || hits > 5000 {
		t.Fatalf("hits = %d, want ≈3300", hits)
	}

	// Resolution clamps at probability 1.
	q, _ := ParseProfile("nand.read:rber*1")
	inj2 := q.NewInjector(1)
	inj2.ResolveRBER(SiteNANDRead, 1, 4096*8)
	if !inj2.Check(SiteNANDRead, 0).Hit {
		t.Fatal("clamped probability 1 missed")
	}
}

func TestSum32(t *testing.T) {
	t.Parallel()
	a := []byte("fine-grained read payload")
	b := append([]byte(nil), a...)
	if Sum32(a) != Sum32(b) {
		t.Fatal("identical payloads hash differently")
	}
	b[7] ^= 1 // single bit flip must be detected
	if Sum32(a) == Sum32(b) {
		t.Fatal("bit flip not detected")
	}
}

// BenchmarkNopCheck guards the Nop injector's zero-cost promise on the
// read hot path: one nil test, no allocations.
func BenchmarkNopCheck(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj.Check(SiteNANDRead, uint64(i)).Hit {
			b.Fatal("nil injector hit")
		}
	}
}
