// Package bitset provides a dense fixed-size bit set used by the device
// layers in place of map[ID]bool membership sets. Besides the obvious
// space/lookup win, iteration order over a bitset is the numeric ID order —
// deterministic — where Go map iteration is deliberately randomized; the
// FTL's victim scans rely on that for reproducible simulations.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold bits [0, n).
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the capacity in bits.
func (s Set) Len() int { return s.n }

// Set sets bit i.
func (s Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (s Set) Get(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count reports the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the index of the first set bit in [from, s.Len()), or -1
// if there is none. Scanning word-at-a-time keeps range iteration cheap even
// over sparse sets.
func (s Set) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return -1
	}
	wi := from >> 6
	w := s.words[wi] >> (uint(from) & 63)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}
