package bitset

import "testing"

func TestSetClearGetCount(t *testing.T) {
	t.Parallel()
	s := New(200)
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Clear(64)
	if s.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count after Clear = %d, want 6", got)
	}
}

// TestNextSetOrder checks the property the FTL's victim scans rely on:
// NextSet iteration visits set bits in ascending numeric order, across word
// boundaries, and terminates with -1.
func TestNextSetOrder(t *testing.T) {
	t.Parallel()
	s := New(300)
	want := []int{0, 5, 63, 64, 65, 191, 192, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if s.NextSet(300) != -1 || s.NextSet(1000) != -1 {
		t.Fatal("NextSet past Len should be -1")
	}
	if empty := New(128); empty.NextSet(0) != -1 {
		t.Fatal("NextSet on empty set should be -1")
	}
	if s.NextSet(-5) != 0 {
		t.Fatal("NextSet with negative from should clamp to 0")
	}
}
