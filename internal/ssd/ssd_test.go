package ssd

import (
	"bytes"
	"testing"

	"pipette/internal/ftl"
	"pipette/internal/hmb"
	"pipette/internal/nand"
	"pipette/internal/nvme"
	"pipette/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NAND.Channels = 2
	cfg.NAND.WaysPerChannel = 2
	cfg.NAND.PlanesPerDie = 1
	cfg.NAND.BlocksPerPlane = 16
	cfg.NAND.PagesPerBlock = 32
	return cfg
}

func newCtrl(t testing.TB) *Controller {
	t.Helper()
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func preload(t testing.TB, c *Controller, pages int) {
	t.Helper()
	for i := 0; i < pages; i++ {
		if err := c.FTL().Preload(ftl.LBA(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func expected(c *Controller, lba uint64, off, n int) []byte {
	ppa, err := c.FTL().Translate(ftl.LBA(lba))
	if err != nil {
		panic(err)
	}
	buf := make([]byte, n)
	nand.ExpectedContent(c.Array().Config().ContentSeed, c.PageSize(), ppa, off, buf)
	return buf
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ReadBufferPages = 0
	if _, err := New(cfg); err == nil {
		t.Error("ReadBufferPages=0 accepted")
	}
	cfg = testConfig()
	cfg.CMBBytes = 100
	if _, err := New(cfg); err == nil {
		t.Error("tiny CMB accepted")
	}
	cfg = testConfig()
	cfg.PCIe.DMABandwidthMBps = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestBlockReadRoundTrip(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 8)
	buf := make([]byte, 4*c.PageSize())
	cmd := nvme.Command{Op: nvme.OpRead, LBA: 2, Pages: 4, Data: buf}
	comp := c.Execute(0, &cmd)
	if !comp.Ok() {
		t.Fatalf("completion %+v", comp)
	}
	for i := 0; i < 4; i++ {
		want := expected(c, uint64(2+i), 0, c.PageSize())
		got := buf[i*c.PageSize() : (i+1)*c.PageSize()]
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d content mismatch", i)
		}
	}
	if comp.BytesMoved != uint64(4*c.PageSize()) {
		t.Fatalf("BytesMoved = %d", comp.BytesMoved)
	}
	if comp.Done <= 0 {
		t.Fatal("no virtual time consumed")
	}
}

func TestBlockReadParallelChannels(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 8)
	// FTL stripes sequential LBAs channel-major, so a 2-page read uses both
	// channels: its completion should be far less than twice a 1-page read.
	one := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 1, Data: make([]byte, c.PageSize())})
	c2, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c2.FTL().Preload(ftl.LBA(i)); err != nil {
			t.Fatal(err)
		}
	}
	two := c2.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 2, Data: make([]byte, 2*c.PageSize())})
	if !one.Ok() || !two.Ok() {
		t.Fatal("reads failed")
	}
	tR := nand.TimingFor(testConfig().NAND.Cell).ReadPage
	if two.Done-one.Done >= tR {
		t.Fatalf("2-page read %v vs 1-page %v: no channel overlap", two.Done, one.Done)
	}
}

func TestBlockReadErrors(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 2)
	// Unmapped LBA.
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 100, Pages: 1, Data: make([]byte, c.PageSize())})
	if comp.Status != nvme.StatusUnmapped {
		t.Fatalf("status = %v, want Unmapped", comp.Status)
	}
	// Beyond capacity.
	comp = c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 1 << 40, Pages: 1, Data: make([]byte, c.PageSize())})
	if comp.Status != nvme.StatusLBAOutOfRange {
		t.Fatalf("status = %v, want LBAOutOfRange", comp.Status)
	}
	// Short buffer.
	comp = c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 2, Data: make([]byte, 10)})
	if comp.Status != nvme.StatusInvalidCommand {
		t.Fatalf("status = %v, want InvalidCommand", comp.Status)
	}
}

func TestWriteThenRead(t *testing.T) {
	c := newCtrl(t)
	ps := c.PageSize()
	data := make([]byte, 2*ps)
	for i := range data {
		data[i] = byte(i % 251)
	}
	w := c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 10, Pages: 2, Data: data})
	if !w.Ok() {
		t.Fatalf("write: %+v", w)
	}
	buf := make([]byte, 2*ps)
	r := c.Execute(w.Done, &nvme.Command{Op: nvme.OpRead, LBA: 10, Pages: 2, Data: buf})
	if !r.Ok() {
		t.Fatalf("read: %+v", r)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read != written")
	}
	st := c.Stats()
	if st.WriteCmds != 1 || st.BlockReadCmds != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesFromHost != uint64(2*ps) || st.BytesToHost != uint64(2*ps) {
		t.Fatalf("traffic %+v", st)
	}
}

func TestTrimAndFlush(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 4)
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpTrim, LBA: 1, Pages: 2})
	if !comp.Ok() {
		t.Fatalf("trim: %+v", comp)
	}
	r := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 1, Pages: 1, Data: make([]byte, c.PageSize())})
	if r.Status != nvme.StatusUnmapped {
		t.Fatalf("read after trim: %v", r.Status)
	}
	f := c.Execute(0, &nvme.Command{Op: nvme.OpFlush})
	if !f.Ok() {
		t.Fatalf("flush: %+v", f)
	}
}

func TestUnknownOpcode(t *testing.T) {
	c := newCtrl(t)
	comp := c.Execute(0, &nvme.Command{Op: nvme.Opcode(99)})
	if comp.Status != nvme.StatusInvalidCommand {
		t.Fatalf("status = %v", comp.Status)
	}
}

func newHMB(t testing.TB) *hmb.Region {
	t.Helper()
	r, err := hmb.New(hmb.Config{DataBytes: 1 << 20, TempBufBytes: 64 << 10, TempSlot: 4096, InfoSlots: 64})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFineReadRequiresHMB(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 2)
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{0}})
	if comp.Status != nvme.StatusInvalidCommand {
		t.Fatalf("fine read without HMB: %v", comp.Status)
	}
	if c.HMBEnabled() {
		t.Fatal("HMBEnabled before EnableHMB")
	}
}

func TestFineReadExtractsRange(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 4)
	region := newHMB(t)
	c.EnableHMB(region)

	const dest, off, n = 512, 1000, 128
	if err := region.Info().Push(hmb.InfoRecord{LBA: 3, ByteOff: off, ByteLen: n, Dest: dest}); err != nil {
		t.Fatal(err)
	}
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{3}})
	if !comp.Ok() {
		t.Fatalf("fine read: %+v", comp)
	}
	if comp.BytesMoved != n {
		t.Fatalf("BytesMoved = %d, want %d (only demanded bytes cross PCIe)", comp.BytesMoved, n)
	}
	got := make([]byte, n)
	if err := region.ReadAt(dest, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, expected(c, 3, off, n)) {
		t.Fatal("extracted bytes wrong")
	}
	if region.Info().Pending() != 0 {
		t.Fatal("info record not consumed (head not bumped)")
	}
	if c.Stats().FineReadCmds != 1 || c.Stats().RangesExtract != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestFineReadCrossPageRange(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 4)
	region := newHMB(t)
	c.EnableHMB(region)
	ps := c.PageSize()

	// Range starts 32 B before the end of page 1 and extends 96 B into
	// page 2.
	off, n := ps-32, 128
	if err := region.Info().Push(hmb.InfoRecord{LBA: 1, ByteOff: off, ByteLen: n, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{1, 2}})
	if !comp.Ok() {
		t.Fatalf("fine read: %+v", comp)
	}
	got := make([]byte, n)
	if err := region.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	want := append(expected(c, 1, off, 32), expected(c, 2, 0, 96)...)
	if !bytes.Equal(got, want) {
		t.Fatal("cross-page extraction wrong")
	}
}

func TestFineReadValidation(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 4)
	region := newHMB(t)
	c.EnableHMB(region)

	// No pending info record.
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{0}})
	if comp.Status != nvme.StatusInvalidCommand {
		t.Fatalf("no-record status = %v", comp.Status)
	}
	// Record/command LBA mismatch.
	if err := region.Info().Push(hmb.InfoRecord{LBA: 9, ByteOff: 0, ByteLen: 8, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	comp = c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{0}})
	if comp.Status != nvme.StatusInvalidCommand {
		t.Fatalf("mismatch status = %v", comp.Status)
	}
	// Range overruns the page list.
	if err := region.Info().Push(hmb.InfoRecord{LBA: 0, ByteOff: 4000, ByteLen: 200, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	comp = c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{0}})
	if comp.Status != nvme.StatusInvalidCommand {
		t.Fatalf("overrun status = %v", comp.Status)
	}
}

func TestFineReadFasterThanBlockRead(t *testing.T) {
	// The core premise: a 128 B fine read must complete well before a 4 KiB
	// block read of the same page (no full-page DMA, leaner firmware path).
	c := newCtrl(t)
	preload(t, c, 2)
	region := newHMB(t)
	c.EnableHMB(region)

	block := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 1, Data: make([]byte, c.PageSize())})
	if err := region.Info().Push(hmb.InfoRecord{LBA: 1, ByteOff: 0, ByteLen: 128, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	fine := c.Execute(block.Done, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{1}})
	if !block.Ok() || !fine.Ok() {
		t.Fatal("reads failed")
	}
	blockLat := block.Done
	fineLat := fine.Done - block.Done
	if fineLat >= blockLat {
		t.Fatalf("fine read %v not faster than block read %v", fineLat, blockLat)
	}
}

func TestMMIOReadCosts(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 2)
	slot, done, err := c.LoadToCMB(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pcie := c.PCIeModel()
	// 8 bytes: one transaction.
	buf8 := make([]byte, 8)
	t8, err := c.MMIORead(done, slot, 0, buf8)
	if err != nil {
		t.Fatal(err)
	}
	if t8-done != pcie.MMIOTransaction {
		t.Fatalf("8B MMIO took %v, want %v", t8-done, pcie.MMIOTransaction)
	}
	// 4096 bytes: 512 transactions — linear in size.
	buf4k := make([]byte, 4096)
	t4k, err := c.MMIORead(done, slot, 0, buf4k)
	if err != nil {
		t.Fatal(err)
	}
	if t4k-done != 512*pcie.MMIOTransaction {
		t.Fatalf("4KiB MMIO took %v, want %v", t4k-done, 512*pcie.MMIOTransaction)
	}
	if !bytes.Equal(buf4k, expected(c, 0, 0, 4096)) {
		t.Fatal("MMIO data wrong")
	}
	// Odd size rounds transactions up.
	buf9 := make([]byte, 9)
	t9, _ := c.MMIORead(done, slot, 0, buf9)
	if t9-done != 2*pcie.MMIOTransaction {
		t.Fatalf("9B MMIO took %v, want 2 txns", t9-done)
	}
}

func TestDMAReadFromCMB(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 2)
	slot, done, err := c.LoadToCMB(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	end, err := c.DMAReadFromCMB(done, slot, 100, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, expected(c, 1, 100, 256)) {
		t.Fatal("DMA data wrong")
	}
	if end <= done {
		t.Fatal("DMA consumed no time")
	}
	// DMA of small payload beats MMIO of a large one but costs setup.
	if end-done < c.PCIeModel().DMASetup {
		t.Fatal("DMA cheaper than its setup cost")
	}
}

func TestCMBRangeChecks(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 2)
	buf := make([]byte, 8)
	if _, err := c.MMIORead(0, 0, 0, buf); err == nil {
		t.Error("read from unloaded CMB slot accepted")
	}
	slot, done, err := c.LoadToCMB(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MMIORead(done, slot, c.PageSize()-4, buf); err == nil {
		t.Error("overrun MMIO accepted")
	}
	if _, err := c.DMAReadFromCMB(done, -1, 0, buf); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestCMBSlotRotation(t *testing.T) {
	cfg := testConfig()
	cfg.CMBBytes = 2 * cfg.NAND.PageSize // two slots
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.FTL().Preload(ftl.LBA(i)); err != nil {
			t.Fatal(err)
		}
	}
	s0, _, _ := c.LoadToCMB(0, 0)
	s1, _, _ := c.LoadToCMB(0, 1)
	s2, _, _ := c.LoadToCMB(0, 2)
	if s0 == s1 || s0 != s2 {
		t.Fatalf("slots %d,%d,%d: expected rotation over 2 slots", s0, s1, s2)
	}
}

func TestDriverIntegration(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 4)
	d := nvme.NewDriver(c, 32, nvme.DefaultCosts())
	buf := make([]byte, c.PageSize())
	comp, err := d.Submit(0, nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 1, Data: buf})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Ok() {
		t.Fatalf("completion %+v", comp)
	}
	if !bytes.Equal(buf, expected(c, 0, 0, c.PageSize())) {
		t.Fatal("driver read wrong data")
	}
	if comp.Done <= nvme.DefaultCosts().Total() {
		t.Fatal("transport costs missing")
	}
}

func BenchmarkFineRead128(b *testing.B) {
	cfg := testConfig()
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := c.FTL().Preload(ftl.LBA(i)); err != nil {
			b.Fatal(err)
		}
	}
	region, err := hmb.New(hmb.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c.EnableHMB(region)
	var now sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := uint64(i % 64)
		if err := region.Info().Push(hmb.InfoRecord{LBA: lba, ByteOff: 0, ByteLen: 128, Dest: 0}); err != nil {
			b.Fatal(err)
		}
		comp := c.Execute(now, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{lba}})
		if !comp.Ok() {
			b.Fatalf("%+v", comp)
		}
		now = comp.Done
	}
}
