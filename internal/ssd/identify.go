package ssd

import (
	"fmt"
	"strings"

	"pipette/internal/sim"
)

// Identify is the controller's self-description, in the spirit of the NVMe
// Identify Controller / Identify Namespace data structures. cmd/pipette-sim
// prints it; tests assert the geometry wiring.
type Identify struct {
	Model           string
	Channels        int
	WaysPerChannel  int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageSize        int
	CellType        string
	RawCapacity     uint64 // bytes
	LogicalCapacity uint64 // bytes exported after overprovisioning
	HMBEnabled      bool
	CMBBytes        int
}

// Identify reports the device description.
func (c *Controller) Identify() Identify {
	n := c.cfg.NAND
	return Identify{
		Model:           "PIPETTE-SIM YS9203-class",
		Channels:        n.Channels,
		WaysPerChannel:  n.WaysPerChannel,
		PlanesPerDie:    n.PlanesPerDie,
		BlocksPerPlane:  n.BlocksPerPlane,
		PagesPerBlock:   n.PagesPerBlock,
		PageSize:        n.PageSize,
		CellType:        n.Cell.String(),
		RawCapacity:     n.CapacityBytes(),
		LogicalCapacity: c.fl.LogicalPages() * uint64(n.PageSize),
		HMBEnabled:      c.hmbRegion != nil,
		CMBBytes:        c.cfg.CMBBytes,
	}
}

// String renders the identification block.
func (id Identify) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d ch x %d way x %d plane, %d blk/plane x %d pg/blk x %d B (%s)\n",
		id.Model, id.Channels, id.WaysPerChannel, id.PlanesPerDie,
		id.BlocksPerPlane, id.PagesPerBlock, id.PageSize, id.CellType)
	fmt.Fprintf(&b, "capacity: %.1f GiB raw, %.1f GiB exported; HMB=%v CMB=%d KiB",
		float64(id.RawCapacity)/(1<<30), float64(id.LogicalCapacity)/(1<<30),
		id.HMBEnabled, id.CMBBytes>>10)
	return b.String()
}

// Smart is a SMART-style health/activity log assembled from the stack's
// counters — the device-side view of everything the host benchmarks
// measure from above.
type Smart struct {
	HostReadCommands  uint64
	FineReadCommands  uint64
	HostWriteCommands uint64
	BytesRead         uint64 // device -> host
	BytesWritten      uint64 // host -> device

	NANDReads          uint64
	NANDProgams        uint64
	NANDErases         uint64
	NANDReadRetries    uint64
	GCRuns             uint64
	WriteAmplification float64
	MaxEraseCount      uint32
	AvgEraseCount      float64

	ChannelBusyTime []sim.Time // per-channel cumulative occupancy
}

// Smart reports the health/activity log.
func (c *Controller) Smart() Smart {
	fstats := c.fl.Stats()
	astats := c.arr.Stats()
	s := Smart{
		HostReadCommands:   c.stats.BlockReadCmds,
		FineReadCommands:   c.stats.FineReadCmds,
		HostWriteCommands:  c.stats.WriteCmds,
		BytesRead:          c.stats.BytesToHost,
		BytesWritten:       c.stats.BytesFromHost,
		NANDReads:          astats.Reads,
		NANDProgams:        astats.Programs,
		NANDErases:         astats.Erases,
		NANDReadRetries:    astats.ReadRetries,
		GCRuns:             fstats.GCRuns,
		WriteAmplification: fstats.WriteAmplification(),
	}
	var sum uint64
	counts := c.fl.EraseCounts()
	for _, e := range counts {
		sum += uint64(e)
		if e > s.MaxEraseCount {
			s.MaxEraseCount = e
		}
	}
	if len(counts) > 0 {
		s.AvgEraseCount = float64(sum) / float64(len(counts))
	}
	s.ChannelBusyTime = make([]sim.Time, c.cfg.NAND.Channels)
	for ch := range s.ChannelBusyTime {
		s.ChannelBusyTime[ch] = c.arr.ChannelBusy(ch)
	}
	return s
}

// String renders the SMART log.
func (s Smart) String() string {
	return fmt.Sprintf(
		"host: %d block reads, %d fine reads, %d writes; %.1f MB out, %.1f MB in\n"+
			"nand: %d reads (%d retries), %d programs, %d erases; GC runs %d, WA %.2f; wear max/avg %d/%.2f",
		s.HostReadCommands, s.FineReadCommands, s.HostWriteCommands,
		float64(s.BytesRead)/(1<<20), float64(s.BytesWritten)/(1<<20),
		s.NANDReads, s.NANDReadRetries, s.NANDProgams, s.NANDErases,
		s.GCRuns, s.WriteAmplification, s.MaxEraseCount, s.AvgEraseCount)
}
