package ssd

import (
	"bytes"
	"testing"

	"pipette/internal/ftl"
	"pipette/internal/hmb"
	"pipette/internal/nvme"
	"pipette/internal/sim"
)

func bufferedCtrl(t testing.TB, bufPages int) *Controller {
	t.Helper()
	cfg := testConfig()
	cfg.WriteBufferPages = bufPages
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWriteBufferAcksWithoutProgram(t *testing.T) {
	buffered := bufferedCtrl(t, 32)
	inline := newCtrl(t)
	ps := buffered.PageSize()
	data := make([]byte, ps)

	bc := buffered.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 0, Pages: 1, Data: data})
	ic := inline.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 0, Pages: 1, Data: data})
	if !bc.Ok() || !ic.Ok() {
		t.Fatal("writes failed")
	}
	// Buffered ack hides tPROG (hundreds of microseconds).
	if bc.Done >= ic.Done {
		t.Fatalf("buffered write %v not faster than inline %v", bc.Done, ic.Done)
	}
	if bc.Done >= 100*sim.Microsecond {
		t.Fatalf("buffered ack %v should be DMA-bound", bc.Done)
	}
	if buffered.BufferedPages() != 1 {
		t.Fatalf("BufferedPages = %d", buffered.BufferedPages())
	}
	// Nothing programmed yet.
	if buffered.Array().Stats().Programs != 0 {
		t.Fatal("buffered write programmed NAND before destage")
	}
}

func TestWriteBufferReadCoherence(t *testing.T) {
	c := bufferedCtrl(t, 32)
	ps := c.PageSize()
	data := make([]byte, ps)
	for i := range data {
		data[i] = byte(i * 3)
	}
	w := c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 5, Pages: 1, Data: data})
	if !w.Ok() {
		t.Fatal(w)
	}
	// Block read sees the buffered content.
	buf := make([]byte, ps)
	r := c.Execute(w.Done, &nvme.Command{Op: nvme.OpRead, LBA: 5, Pages: 1, Data: buf})
	if !r.Ok() || !bytes.Equal(buf, data) {
		t.Fatal("block read did not see buffered write")
	}
	// Fine read sees it too.
	region, err := hmb.New(hmb.Config{DataBytes: 1 << 20, TempBufBytes: 64 << 10, TempSlot: 4096, InfoSlots: 16})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableHMB(region)
	if err := region.Info().Push(hmb.InfoRecord{LBA: 5, ByteOff: 100, ByteLen: 32, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	fr := c.Execute(r.Done, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{5}})
	if !fr.Ok() {
		t.Fatalf("fine read: %+v", fr)
	}
	got := make([]byte, 32)
	if err := region.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[100:132]) {
		t.Fatal("fine read did not see buffered write")
	}
	// CMB load sees it.
	slot, done, err := c.LoadToCMB(fr.Done, 5)
	if err != nil {
		t.Fatal(err)
	}
	cmbBuf := make([]byte, 64)
	if _, err := c.MMIORead(done, slot, 0, cmbBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cmbBuf, data[:64]) {
		t.Fatal("CMB load did not see buffered write")
	}
	// Oracle sees it.
	peek := make([]byte, 16)
	if err := c.PeekLBA(5, 100, peek); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(peek, data[100:116]) {
		t.Fatal("oracle did not see buffered write")
	}
}

func TestWriteBufferDestagesAtHighWater(t *testing.T) {
	c := bufferedCtrl(t, 8)
	ps := c.PageSize()
	data := make([]byte, ps)
	var now sim.Time
	for i := 0; i < 20; i++ {
		comp := c.Execute(now, &nvme.Command{Op: nvme.OpWrite, LBA: uint64(i), Pages: 1, Data: data})
		if !comp.Ok() {
			t.Fatalf("write %d: %+v", i, comp)
		}
		now = comp.Done
		if c.BufferedPages() > 9 {
			t.Fatalf("buffer exceeded high-water mark: %d", c.BufferedPages())
		}
	}
	if c.Stats().PagesDestaged == 0 {
		t.Fatal("no background destage happened")
	}
	// Destaged pages are readable from NAND after buffer eviction.
	buf := make([]byte, ps)
	r := c.Execute(now, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 1, Data: buf})
	if !r.Ok() {
		t.Fatalf("read of destaged page: %+v", r)
	}
}

func TestFlushDrainsBuffer(t *testing.T) {
	c := bufferedCtrl(t, 32)
	ps := c.PageSize()
	data := make([]byte, ps)
	var now sim.Time
	for i := 0; i < 5; i++ {
		comp := c.Execute(now, &nvme.Command{Op: nvme.OpWrite, LBA: uint64(i), Pages: 1, Data: data})
		now = comp.Done
	}
	if c.BufferedPages() != 5 {
		t.Fatalf("BufferedPages = %d", c.BufferedPages())
	}
	fl := c.Execute(now, &nvme.Command{Op: nvme.OpFlush})
	if !fl.Ok() {
		t.Fatalf("flush: %+v", fl)
	}
	if c.BufferedPages() != 0 {
		t.Fatal("flush left buffered pages")
	}
	// Flush is synchronous: it pays the program time.
	if fl.Done-now < 100*sim.Microsecond {
		t.Fatalf("flush of 5 pages took only %v", fl.Done-now)
	}
	// All five pages now live on flash via the FTL.
	for i := 0; i < 5; i++ {
		if !c.FTL().IsMapped(ftl.LBA(i)) {
			t.Fatalf("lba %d not mapped after flush", i)
		}
	}
}

func TestWriteBufferOverwriteCoalesces(t *testing.T) {
	c := bufferedCtrl(t, 32)
	ps := c.PageSize()
	a := bytes.Repeat([]byte{1}, ps)
	b := bytes.Repeat([]byte{2}, ps)
	var now sim.Time
	for _, d := range [][]byte{a, b, a, b} {
		comp := c.Execute(now, &nvme.Command{Op: nvme.OpWrite, LBA: 7, Pages: 1, Data: d})
		now = comp.Done
	}
	if c.BufferedPages() != 1 {
		t.Fatalf("rewrites did not coalesce: %d pages", c.BufferedPages())
	}
	fl := c.Execute(now, &nvme.Command{Op: nvme.OpFlush})
	if !fl.Ok() {
		t.Fatal("flush failed")
	}
	// Only the final version programs.
	if got := c.Array().Stats().Programs; got != 1 {
		t.Fatalf("programs = %d, want 1 (coalesced)", got)
	}
	buf := make([]byte, ps)
	r := c.Execute(fl.Done, &nvme.Command{Op: nvme.OpRead, LBA: 7, Pages: 1, Data: buf})
	if !r.Ok() || !bytes.Equal(buf, b) {
		t.Fatal("coalesced content wrong")
	}
}

func TestWriteBufferTrimDropsPage(t *testing.T) {
	c := bufferedCtrl(t, 32)
	ps := c.PageSize()
	data := make([]byte, ps)
	w := c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 3, Pages: 1, Data: data})
	tr := c.Execute(w.Done, &nvme.Command{Op: nvme.OpTrim, LBA: 3, Pages: 1})
	if !tr.Ok() {
		t.Fatalf("trim: %+v", tr)
	}
	if c.BufferedPages() != 0 {
		t.Fatal("trim left the page buffered")
	}
	r := c.Execute(tr.Done, &nvme.Command{Op: nvme.OpRead, LBA: 3, Pages: 1, Data: make([]byte, ps)})
	if r.Status != nvme.StatusUnmapped {
		t.Fatalf("read after trim: %v", r.Status)
	}
}

func TestWriteBufferRejectsBadLBA(t *testing.T) {
	c := bufferedCtrl(t, 32)
	ps := c.PageSize()
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 1 << 40, Pages: 1, Data: make([]byte, ps)})
	if comp.Status != nvme.StatusLBAOutOfRange {
		t.Fatalf("status = %v", comp.Status)
	}
	cfg := testConfig()
	cfg.WriteBufferPages = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative write buffer accepted")
	}
}
