package ssd

import (
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Controller write buffer: real NVMe drives acknowledge writes once the
// data sits in controller DRAM and destage to NAND in the background,
// hiding tPROG from the host. The buffer is volatile — OpFlush is what
// gives durability, exactly the POSIX fsync contract.
//
// Disabled by default (WriteBufferPages = 0) so the calibrated experiment
// results are unchanged; enable it via config to study its effect (the
// write-buffer ablation does).

// wbEntry is one buffered page.
type wbEntry struct {
	lba  uint64
	data []byte
}

// bufLookup returns the buffered content of lba, if present. All read
// paths (block, fine, CMB, oracle) consult it for coherence.
func (c *Controller) bufLookup(lba uint64) ([]byte, bool) {
	idx, ok := c.wbufIdx[lba]
	if !ok {
		return nil, false
	}
	return c.wbuf[idx].data, true
}

// bufInsert stages one page, overwriting any previous version in place.
func (c *Controller) bufInsert(lba uint64, data []byte) {
	stored := make([]byte, len(data))
	copy(stored, data)
	if idx, ok := c.wbufIdx[lba]; ok {
		c.wbuf[idx].data = stored
		return
	}
	c.wbufIdx[lba] = len(c.wbuf)
	c.wbuf = append(c.wbuf, wbEntry{lba: lba, data: stored})
}

// bufDrop removes a page (TRIM of a buffered LBA).
func (c *Controller) bufDrop(lba uint64) {
	idx, ok := c.wbufIdx[lba]
	if !ok {
		return
	}
	last := len(c.wbuf) - 1
	c.wbuf[idx] = c.wbuf[last]
	c.wbufIdx[c.wbuf[idx].lba] = idx
	c.wbuf = c.wbuf[:last]
	delete(c.wbufIdx, lba)
}

// destage flushes buffered pages to NAND, oldest first, until at most
// keep remain. Programs issue at now; when background is true the caller
// does not wait (NAND resource timelines absorb the work), otherwise the
// returned time covers the full drain.
func (c *Controller) destage(now sim.Time, keep int, background bool) (sim.Time, error) {
	t := now
	for len(c.wbuf) > keep {
		e := c.wbuf[0]
		c.wbuf = c.wbuf[1:]
		delete(c.wbufIdx, e.lba)
		done, err := c.programLBA(t, e.lba, e.data)
		if err != nil {
			return t, err
		}
		if !background {
			t = done
		}
		c.stats.PagesDestaged++
	}
	// Reindex after the slice shifted.
	for i := range c.wbuf {
		c.wbufIdx[c.wbuf[i].lba] = i
	}
	return t, nil
}

// execBufferedWrite handles OpWrite when the write buffer is enabled:
// DMA in, stage, acknowledge; destage in the background when past the
// high-water mark.
func (c *Controller) execBufferedWrite(now sim.Time, cmd *nvme.Command) nvme.Completion {
	ps := c.cfg.NAND.PageSize
	if cmd.Pages <= 0 || len(cmd.Data) != cmd.Pages*ps {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	c.stats.WriteCmds++
	_, t := c.linkSpan(now+c.cfg.FirmwareBlockOverhead, c.cfg.PCIe.dmaTime(len(cmd.Data)))
	c.stats.BytesFromHost += uint64(len(cmd.Data))
	for i := 0; i < cmd.Pages; i++ {
		lba := cmd.LBA + uint64(i)
		// Writes must target exported LBAs even while buffered.
		if lba >= c.fl.LogicalPages() {
			return nvme.Completion{Status: nvme.StatusLBAOutOfRange, Done: t}
		}
		c.bufInsert(lba, cmd.Data[i*ps:(i+1)*ps])
	}
	if len(c.wbuf) > c.cfg.WriteBufferPages {
		if _, err := c.destage(t, c.cfg.WriteBufferPages/2, true); err != nil {
			return nvme.Completion{Status: statusFor(err), Done: t}
		}
	}
	if c.tr.Enabled() {
		c.tr.Span(telemetry.TrackSSD, "write.buffer", now, t)
	}
	return nvme.Completion{Status: nvme.StatusOK, Done: t, BytesMoved: uint64(len(cmd.Data))}
}

// execFlush drains the write buffer synchronously — durability point.
func (c *Controller) execFlush(now sim.Time) nvme.Completion {
	c.stats.FlushCmds++
	t := now + c.cfg.FirmwareBlockOverhead
	if c.cfg.WriteBufferPages > 0 {
		var err error
		t, err = c.destage(t, 0, false)
		if err != nil {
			return nvme.Completion{Status: statusFor(err), Done: t}
		}
	}
	if c.tr.Enabled() {
		c.tr.Span(telemetry.TrackSSD, "flush", now, t)
	}
	return nvme.Completion{Status: nvme.StatusOK, Done: t}
}

// BufferedPages reports pages currently staged in controller DRAM.
func (c *Controller) BufferedPages() int { return len(c.wbuf) }
