// Package ssd models the SSD controller: it executes NVMe commands against
// the FTL/NAND stack, owns the controller-DRAM read buffer, implements the
// paper's Fine-Grained Read Engine (§3.1.2, Figure 4), and exposes the
// Controller Memory Buffer plus MMIO/DMA transfer mechanics the 2B-SSD
// baselines are built from.
//
// All PCIe crossings are accounted as host-interface traffic; device-
// internal movement (NAND -> read buffer -> CMB) is not, matching how the
// paper's I/O-traffic tables count only demanded-vs-transferred host bytes.
package ssd

import (
	"errors"
	"fmt"

	"pipette/internal/fault"
	"pipette/internal/ftl"
	"pipette/internal/hmb"
	"pipette/internal/nand"
	"pipette/internal/nvme"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// PCIe models the host interconnect costs (Gen3 x4 in the paper's
// prototype).
type PCIe struct {
	DMABandwidthMBps float64  // effective DMA throughput
	DMASetup         sim.Time // descriptor setup per DMA transfer
	MMIOTransaction  sim.Time // one non-posted MMIO read round trip
	MMIOPayload      int      // bytes per MMIO transaction (8 on x86)
}

// DefaultPCIe returns Gen3 x4-flavoured constants.
func DefaultPCIe() PCIe {
	return PCIe{
		DMABandwidthMBps: 3200,
		DMASetup:         300 * sim.Nanosecond,
		MMIOTransaction:  250 * sim.Nanosecond,
		MMIOPayload:      8,
	}
}

// dmaTime is the link occupancy to move n bytes by DMA.
func (p PCIe) dmaTime(n int) sim.Time {
	return p.DMASetup + sim.Time(float64(n)/(p.DMABandwidthMBps*(1<<20))*float64(sim.Second))
}

// mmioTime is the cost to read n bytes through non-posted MMIO
// transactions: each moves at most MMIOPayload bytes and must wait for its
// completion before the next issues (why 2B-SSD MMIO degrades linearly with
// request size in the paper's Figure 8).
func (p PCIe) mmioTime(n int) sim.Time {
	txns := (n + p.MMIOPayload - 1) / p.MMIOPayload
	return sim.Time(txns) * p.MMIOTransaction
}

// Config assembles a device.
type Config struct {
	NAND nand.Config
	FTL  ftl.Config
	PCIe PCIe

	// ReadBufferPages bounds how many NAND pages one command can hold in
	// controller DRAM at once; larger multi-page commands process in
	// batches.
	ReadBufferPages int
	// FirmwareBlockOverhead is per-command FTL/firmware processing for
	// block commands; FirmwareFineOverhead for the leaner fine-read path.
	FirmwareBlockOverhead sim.Time
	FirmwareFineOverhead  sim.Time
	// ExtractOverhead is the engine's per-range scatter cost (Figure 4
	// step 3c).
	ExtractOverhead sim.Time
	// CMBBytes sizes the Controller Memory Buffer used by the 2B-SSD
	// baselines.
	CMBBytes int
	// WriteBufferPages enables the controller-DRAM write buffer: writes
	// acknowledge after the host DMA and destage to NAND in the background;
	// OpFlush drains synchronously. 0 disables (writes program NAND
	// inline), the calibrated default.
	WriteBufferPages int

	// ECCRetrySteps bounds the read-retry ladder the ECC engine walks when
	// an injected raw-bit-error burst exceeds the default correction
	// strength; each step re-senses the page (full tR + transfer). A page
	// still failing past the ladder is uncorrectable. 0 means no retries:
	// any ECC hit is immediately uncorrectable.
	ECCRetrySteps int
	// ECCUncorrectableFrac is the fraction of the injected-severity
	// spectrum that exhausts the whole ladder and still fails.
	ECCUncorrectableFrac float64

	// LinkArbitration models the PCIe link as a serially occupied
	// resource: DMA bursts and MMIO transactions queue FIFO behind
	// in-flight transfers, so overlapping commands see real link
	// contention. Off (the default), bursts overlap freely — the additive
	// model every closed-loop experiment was calibrated on.
	LinkArbitration bool
}

// DefaultConfig mirrors the paper's platform.
func DefaultConfig() Config {
	return Config{
		NAND:                  nand.DefaultConfig(),
		FTL:                   ftl.DefaultConfig(),
		PCIe:                  DefaultPCIe(),
		ReadBufferPages:       64,
		FirmwareBlockOverhead: 3 * sim.Microsecond,
		FirmwareFineOverhead:  1 * sim.Microsecond,
		ExtractOverhead:       300 * sim.Nanosecond,
		CMBBytes:              4 << 20,
		ECCRetrySteps:         4,
		ECCUncorrectableFrac:  0.02,
	}
}

// Stats counts controller activity.
type Stats struct {
	BlockReadCmds  uint64
	FineReadCmds   uint64
	WriteCmds      uint64
	TrimCmds       uint64
	FlushCmds      uint64
	PagesLoaded    uint64 // NAND pages brought into the read buffer
	PagesDestaged  uint64 // write-buffer pages flushed to NAND
	BytesToHost    uint64 // PCIe device->host
	BytesFromHost  uint64 // PCIe host->device
	CMBPageLoads   uint64 // pages loaded into the CMB for 2B-SSD reads
	MMIOBytesRead  uint64
	RangesExtract  uint64 // fine ranges scattered by the read engine
	InfoRecordsRun uint64
}

// Controller is the device. It implements nvme.Device.
type Controller struct {
	cfg Config
	fl  *ftl.FTL
	arr *nand.Array

	hmbRegion *hmb.Region // nil until EnableHMB

	cmb      []byte
	cmbSlots int
	cmbNext  int
	cmbPages []uint64 // lba resident in each slot (for assertions)

	wbuf    []wbEntry
	wbufIdx map[uint64]int

	readBuf []byte // controller-DRAM staging for fine reads (ReadBufferPages pages)

	// Fault injection state: nil injector = Nop, and the counters stay at
	// zero. The counters are atomic so telemetry probes can sample them;
	// they live here (not in Stats) because Stats is copied by value.
	inj            *fault.Injector
	fltECCRetry    telemetry.Counter
	fltUncorrect   telemetry.Counter
	fltRingCorrupt telemetry.Counter
	fltDMACorrupt  telemetry.Counter
	fltProgRetry   telemetry.Counter

	stats  Stats
	tr     telemetry.Tracer
	sa     *telemetry.StageAccount
	dmaRes *resource.Timeline // PCIe link occupancy (nil = off)
	link   sim.Resource       // contended link state (LinkArbitration)
}

// linkSpan schedules a link transfer of duration dur requested at time at,
// returning its [start, end] window. With LinkArbitration the transfer
// queues behind in-flight link work; otherwise it starts immediately.
func (c *Controller) linkSpan(at, dur sim.Time) (start, end sim.Time) {
	if c.cfg.LinkArbitration {
		return c.link.Acquire(at, dur)
	}
	return at, at + dur
}

// LinkWaitTime reports the cumulative time transfers queued for the link
// (always zero unless LinkArbitration is on).
func (c *Controller) LinkWaitTime() sim.Time { return c.link.WaitTime() }

// New builds the full device stack: NAND array, FTL, controller.
func New(cfg Config) (*Controller, error) {
	arr, err := nand.New(cfg.NAND)
	if err != nil {
		return nil, err
	}
	return NewWithArray(cfg, arr)
}

// NewWithArray builds a controller over an existing NAND array (tests use
// this to pre-mark bad blocks).
func NewWithArray(cfg Config, arr *nand.Array) (*Controller, error) {
	if cfg.ReadBufferPages <= 0 {
		return nil, errors.New("ssd: ReadBufferPages must be positive")
	}
	if cfg.PCIe.DMABandwidthMBps <= 0 || cfg.PCIe.MMIOPayload <= 0 {
		return nil, errors.New("ssd: PCIe config incomplete")
	}
	if cfg.CMBBytes < cfg.NAND.PageSize {
		return nil, fmt.Errorf("ssd: CMB %d smaller than one page", cfg.CMBBytes)
	}
	fl, err := ftl.New(arr, cfg.FTL)
	if err != nil {
		return nil, err
	}
	if cfg.WriteBufferPages < 0 {
		return nil, errors.New("ssd: negative write buffer")
	}
	c := &Controller{
		cfg:      cfg,
		fl:       fl,
		arr:      arr,
		cmb:      make([]byte, cfg.CMBBytes),
		cmbSlots: cfg.CMBBytes / cfg.NAND.PageSize,
		wbufIdx:  make(map[uint64]int),
		readBuf:  make([]byte, cfg.ReadBufferPages*cfg.NAND.PageSize),
		tr:       telemetry.Nop(),
	}
	c.cmbPages = make([]uint64, c.cmbSlots)
	for i := range c.cmbPages {
		c.cmbPages[i] = ^uint64(0)
	}
	return c, nil
}

// FTL exposes the translation layer (the filesystem preload path and tests
// need it).
func (c *Controller) FTL() *ftl.FTL { return c.fl }

// Array exposes the NAND array.
func (c *Controller) Array() *nand.Array { return c.arr }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Blame labels for the controller's own resources. ResDMALink matches the
// "pcie.dma" resource timeline; ResFirmware names the controller CPU,
// which has no occupancy timeline (firmware time is per-command, not a
// shared contended unit in this model).
const (
	ResDMALink  = "pcie.dma"
	ResFirmware = "cpu.fw"
)

// SetTracer installs a tracer on the controller and cascades it down to the
// FTL and NAND array, so one call instruments the whole device.
func (c *Controller) SetTracer(tr telemetry.Tracer) {
	c.tr = telemetry.OrNop(tr)
	c.fl.SetTracer(c.tr)
}

// SetStages installs the per-request stage account and cascades it to the
// FTL, which attributes media time (NAND sense/transfer, programs, GC).
// The controller itself attributes firmware, DMA, and ECC-retry time.
func (c *Controller) SetStages(sa *telemetry.StageAccount) {
	c.sa = sa
	c.fl.SetStages(sa)
}

// SetResources registers the device's occupied resources with a tracker:
// the PCIe link ("pcie.dma", covering DMA bursts and MMIO transactions),
// then the NAND channels and dies.
func (c *Controller) SetResources(rt *resource.Tracker) {
	if rt == nil {
		c.dmaRes = nil
		c.arr.SetResources(nil)
		return
	}
	c.dmaRes = rt.Register("pcie.dma")
	c.arr.SetResources(rt)
}

// PageSize reports the device's page size.
func (c *Controller) PageSize() int { return c.cfg.NAND.PageSize }

// LogicalPages reports exported capacity in pages.
func (c *Controller) LogicalPages() uint64 { return c.fl.LogicalPages() }

// EnableHMB attaches the host memory buffer region, modeling the NVMe
// Set-Features handshake at initialization (§3.1.1): the standing DMA
// mapping is established once, so per-access fine reads pay no mapping
// cost afterwards.
func (c *Controller) EnableHMB(r *hmb.Region) {
	c.hmbRegion = r
}

// HMBEnabled reports whether the HMB handshake happened.
func (c *Controller) HMBEnabled() bool { return c.hmbRegion != nil }

// Execute implements nvme.Device.
func (c *Controller) Execute(now sim.Time, cmd *nvme.Command) nvme.Completion {
	switch cmd.Op {
	case nvme.OpRead:
		return c.execBlockRead(now, cmd)
	case nvme.OpWrite:
		if c.cfg.WriteBufferPages > 0 {
			return c.execBufferedWrite(now, cmd)
		}
		return c.execWrite(now, cmd)
	case nvme.OpTrim:
		return c.execTrim(now, cmd)
	case nvme.OpFlush:
		return c.execFlush(now)
	case nvme.OpFineRead:
		return c.execFineRead(now, cmd)
	default:
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
}

func statusFor(err error) nvme.Status {
	switch {
	case errors.Is(err, ftl.ErrBadLBA):
		return nvme.StatusLBAOutOfRange
	case errors.Is(err, ftl.ErrUnmapped):
		return nvme.StatusUnmapped
	case errors.Is(err, nvme.ErrUncorrectable):
		return nvme.StatusMediaError
	default:
		return nvme.StatusInternal
	}
}

// execBlockRead serves a conventional multi-page read: all pages issue to
// the NAND array at once (channel parallelism emerges from the array's
// resource model), then the aggregate DMAs to the host buffer.
func (c *Controller) execBlockRead(now sim.Time, cmd *nvme.Command) nvme.Completion {
	ps := c.cfg.NAND.PageSize
	if cmd.Pages <= 0 || len(cmd.Data) < cmd.Pages*ps {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	c.stats.BlockReadCmds++
	start := now + c.cfg.FirmwareBlockOverhead
	c.sa.MarkRes(telemetry.StageFirmware, start, ResFirmware)

	var moved uint64
	maxDone := start
	for batch := 0; batch < cmd.Pages; batch += c.cfg.ReadBufferPages {
		batchEnd := batch + c.cfg.ReadBufferPages
		if batchEnd > cmd.Pages {
			batchEnd = cmd.Pages
		}
		issueAt := maxDone
		if batch == 0 {
			issueAt = start
		}
		for i := batch; i < batchEnd; i++ {
			lba := cmd.LBA + uint64(i)
			done, loaded, err := c.readLBAInto(issueAt, lba, cmd.Data[i*ps:(i+1)*ps])
			if err != nil {
				// A failed read still waits for the racing loads it already
				// issued: the command completes no earlier than any of them.
				if done < maxDone {
					done = maxDone
				}
				return nvme.Completion{Status: statusFor(err), Done: done}
			}
			if done > maxDone {
				maxDone = done
			}
			if loaded {
				c.stats.PagesLoaded++
			}
		}
	}
	moved = uint64(cmd.Pages * ps)
	dmaStart, done := c.linkSpan(maxDone, c.cfg.PCIe.dmaTime(int(moved)))
	c.sa.MarkRes(telemetry.StageDMA, done, ResDMALink)
	c.dmaRes.Add(dmaStart, done)
	c.stats.BytesToHost += moved
	if c.tr.Enabled() {
		c.tr.Span(telemetry.TrackSSD, "read.firmware", now, start)
		c.tr.Span(telemetry.TrackSSD, "read.nand", start, maxDone)
		c.tr.Span(telemetry.TrackSSD, "read.dma", dmaStart, done)
	}
	return nvme.Completion{Status: nvme.StatusOK, Done: done, BytesMoved: moved}
}

// execWrite persists page-aligned data: DMA from host, then program via the
// FTL (which may trigger GC, visible in the completion time).
func (c *Controller) execWrite(now sim.Time, cmd *nvme.Command) nvme.Completion {
	ps := c.cfg.NAND.PageSize
	if cmd.Pages <= 0 || len(cmd.Data) != cmd.Pages*ps {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	c.stats.WriteCmds++
	fwDone := now + c.cfg.FirmwareBlockOverhead
	dmaStart, hostDone := c.linkSpan(fwDone, c.cfg.PCIe.dmaTime(len(cmd.Data)))
	c.sa.MarkRes(telemetry.StageFirmware, fwDone, ResFirmware)
	c.sa.MarkRes(telemetry.StageDMA, hostDone, ResDMALink)
	c.dmaRes.Add(dmaStart, hostDone)
	t := hostDone
	c.stats.BytesFromHost += uint64(len(cmd.Data))
	for i := 0; i < cmd.Pages; i++ {
		done, err := c.programLBA(t, cmd.LBA+uint64(i), cmd.Data[i*ps:(i+1)*ps])
		if err != nil {
			return nvme.Completion{Status: statusFor(err), Done: t}
		}
		t = done
	}
	if c.tr.Enabled() {
		c.tr.Span(telemetry.TrackSSD, "write.dma", now, hostDone)
		c.tr.Span(telemetry.TrackSSD, "write.program", hostDone, t)
	}
	return nvme.Completion{Status: nvme.StatusOK, Done: t, BytesMoved: uint64(len(cmd.Data))}
}

func (c *Controller) execTrim(now sim.Time, cmd *nvme.Command) nvme.Completion {
	if cmd.Pages <= 0 {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	c.stats.TrimCmds++
	for i := 0; i < cmd.Pages; i++ {
		c.bufDrop(cmd.LBA + uint64(i))
		if err := c.fl.Trim(ftl.LBA(cmd.LBA + uint64(i))); err != nil {
			return nvme.Completion{Status: statusFor(err), Done: now}
		}
	}
	done := now + c.cfg.FirmwareBlockOverhead
	c.sa.MarkRes(telemetry.StageFirmware, done, ResFirmware)
	return nvme.Completion{Status: nvme.StatusOK, Done: done}
}

// execFineRead is the Fine-Grained Read Engine (Figure 4). One command
// serves one reconstructed application read: (1) load the referenced NAND
// pages into the read buffer, (2) consume the pending Info Area record for
// the destination, (3) extract the demanded byte range across the loaded
// pages and DMA only those bytes into the HMB, then bump the ring head.
func (c *Controller) execFineRead(now sim.Time, cmd *nvme.Command) nvme.Completion {
	if c.hmbRegion == nil {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	if len(cmd.FineLBAs) == 0 || len(cmd.FineLBAs) > c.cfg.ReadBufferPages {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	rec, err := c.hmbRegion.Info().Consume()
	if err != nil {
		if errors.Is(err, hmb.ErrCorruptRecord) {
			// The record is consumed (the ring must not wedge) but its
			// fields cannot be trusted; the host re-serves via block I/O.
			c.fltRingCorrupt.Inc()
			rejectAt := now + c.cfg.FirmwareFineOverhead
			c.sa.MarkRes(telemetry.StageFirmware, rejectAt, ResFirmware)
			return nvme.Completion{Status: nvme.StatusCorruptRing, Done: rejectAt}
		}
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	c.stats.InfoRecordsRun++
	if rec.LBA != cmd.FineLBAs[0] {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	ps := c.cfg.NAND.PageSize
	if rec.ByteOff < 0 || rec.ByteLen <= 0 || rec.ByteOff >= ps ||
		rec.ByteOff+rec.ByteLen > len(cmd.FineLBAs)*ps {
		return nvme.Completion{Status: nvme.StatusInvalidCommand, Done: now}
	}
	c.stats.FineReadCmds++
	start := now + c.cfg.FirmwareFineOverhead
	c.sa.MarkRes(telemetry.StageFirmware, start, ResFirmware)

	// Phase 1: load pages into the controller read buffer; they issue
	// together and race across channels. Pages land contiguously, so the
	// extract phase is one range copy.
	maxDone := start
	for i, lba := range cmd.FineLBAs {
		dst := c.readBuf[i*ps : (i+1)*ps]
		done, loaded, err := c.readLBAInto(start, lba, dst)
		if err != nil {
			// As in the block path: the command outlives its racing loads.
			if done < maxDone {
				done = maxDone
			}
			return nvme.Completion{Status: statusFor(err), Done: done}
		}
		if done > maxDone {
			maxDone = done
		}
		if loaded {
			c.stats.PagesLoaded++
		}
	}

	// Phase 3: extract the demanded range (may cross page boundaries) and
	// scatter it to the HMB destination. Under fault injection the device
	// checksums the payload before the DMA; the host recomputes it over
	// the landed bytes, so an in-flight bit flip is detected, not served.
	payload := c.readBuf[rec.ByteOff : rec.ByteOff+rec.ByteLen]
	var paySum uint32
	if c.inj.Enabled() {
		paySum = fault.Sum32(payload)
	}
	if err := c.hmbRegion.WriteAt(rec.Dest, payload); err != nil {
		return nvme.Completion{Status: nvme.StatusInternal, Done: maxDone}
	}
	if out := c.inj.Check(fault.SiteNVMeDMA, rec.LBA); out.Hit {
		c.fltDMACorrupt.Inc()
		c.corruptHMB(rec.Dest, rec.ByteLen, out.Sev)
	}
	dmaStart, done := c.linkSpan(maxDone+c.cfg.ExtractOverhead, c.cfg.PCIe.dmaTime(rec.ByteLen))
	c.sa.MarkRes(telemetry.StageDMA, done, ResDMALink)
	c.dmaRes.Add(dmaStart, done)
	c.stats.RangesExtract++
	c.stats.BytesToHost += uint64(rec.ByteLen)
	if c.tr.Enabled() {
		c.tr.Span(telemetry.TrackSSD, "fine.firmware", now, start)
		c.tr.Span(telemetry.TrackSSD, "fine.load", start, maxDone)
		c.tr.Span(telemetry.TrackSSD, "fine.extract", maxDone, done)
	}
	return nvme.Completion{
		Status:     nvme.StatusOK,
		Done:       done,
		BytesMoved: uint64(rec.ByteLen),
		PayloadSum: paySum,
	}
}

// corruptHMB flips one bit of a landed DMA payload in the HMB region,
// modeling in-flight corruption the link CRC missed.
func (c *Controller) corruptHMB(dest, n int, sev float64) {
	window, err := c.hmbRegion.Slice(dest, n)
	if err != nil {
		return
	}
	bit := int(sev * float64(n*8))
	if bit >= n*8 {
		bit = n*8 - 1
	}
	window[bit/8] ^= 1 << (bit % 8)
}

// --- CMB mechanics for the 2B-SSD baselines -------------------------------

// LoadToCMB brings the page backing lba into a CMB slot (2B-SSD's first
// step: "SSD controller reads pages from flash chips to the CMB"). Slot
// reuse rotates; there is no caching, faithfully to the baseline.
func (c *Controller) LoadToCMB(now sim.Time, lba uint64) (slot int, done sim.Time, err error) {
	ps := c.cfg.NAND.PageSize
	slot = c.cmbNext
	dst := c.cmb[slot*ps : (slot+1)*ps]
	if done, _, err = c.readLBAInto(now, lba, dst); err != nil {
		return 0, done, err
	}
	c.cmbNext = (c.cmbNext + 1) % c.cmbSlots
	c.cmbPages[slot] = lba
	c.stats.CMBPageLoads++
	return slot, done, nil
}

// MMIORead transfers len(buf) bytes from a CMB slot to the host through
// non-posted MMIO transactions. Returns the completion time.
func (c *Controller) MMIORead(now sim.Time, slot, off int, buf []byte) (sim.Time, error) {
	if err := c.checkCMBRange(slot, off, len(buf)); err != nil {
		return now, err
	}
	base := slot * c.cfg.NAND.PageSize
	copy(buf, c.cmb[base+off:])
	c.stats.MMIOBytesRead += uint64(len(buf))
	c.stats.BytesToHost += uint64(len(buf))
	mmioStart, done := c.linkSpan(now, c.cfg.PCIe.mmioTime(len(buf)))
	c.sa.MarkRes(telemetry.StageDMA, done, ResDMALink)
	c.dmaRes.Add(mmioStart, done)
	return done, nil
}

// DMAReadFromCMB transfers len(buf) bytes from a CMB slot to the host by
// DMA. The caller (the 2B-SSD DMA baseline) adds its per-access mapping
// cost on top; this method charges only the link.
func (c *Controller) DMAReadFromCMB(now sim.Time, slot, off int, buf []byte) (sim.Time, error) {
	if err := c.checkCMBRange(slot, off, len(buf)); err != nil {
		return now, err
	}
	base := slot * c.cfg.NAND.PageSize
	copy(buf, c.cmb[base+off:])
	c.stats.BytesToHost += uint64(len(buf))
	dmaStart, done := c.linkSpan(now, c.cfg.PCIe.dmaTime(len(buf)))
	c.sa.MarkRes(telemetry.StageDMA, done, ResDMALink)
	c.dmaRes.Add(dmaStart, done)
	return done, nil
}

func (c *Controller) checkCMBRange(slot, off, n int) error {
	ps := c.cfg.NAND.PageSize
	if slot < 0 || slot >= c.cmbSlots {
		return fmt.Errorf("ssd: CMB slot %d out of range", slot)
	}
	if off < 0 || n <= 0 || off+n > ps {
		return fmt.Errorf("ssd: CMB range [%d,%d) outside page", off, off+n)
	}
	if c.cmbPages[slot] == ^uint64(0) {
		return errors.New("ssd: CMB slot not loaded")
	}
	return nil
}

// PCIeModel exposes the link cost model (baselines and the latency
// experiment use it directly).
func (c *Controller) PCIeModel() PCIe { return c.cfg.PCIe }

// PeekLBA reads len(buf) bytes at byte offset off within the page backing
// lba, without consuming virtual time or counting traffic. It is the
// simulator's content oracle: the host uses it to reconstruct clean
// page-cache pages (which are metadata-only to keep multi-gigabyte working
// sets cheap) and tests use it to verify end-to-end data paths.
func (c *Controller) PeekLBA(lba uint64, off int, buf []byte) error {
	if data, ok := c.bufLookup(lba); ok {
		if off < 0 || off+len(buf) > len(data) {
			return nand.ErrOutOfRange
		}
		copy(buf, data[off:])
		return nil
	}
	ppa, err := c.fl.Translate(ftl.LBA(lba))
	if err != nil {
		return err
	}
	return c.arr.PeekRange(ppa, off, buf)
}
