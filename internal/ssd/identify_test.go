package ssd

import (
	"strings"
	"testing"

	"pipette/internal/ftl"
	"pipette/internal/hmb"
	"pipette/internal/nvme"
)

func TestIdentify(t *testing.T) {
	c := newCtrl(t)
	id := c.Identify()
	cfg := testConfig().NAND
	if id.Channels != cfg.Channels || id.WaysPerChannel != cfg.WaysPerChannel ||
		id.PageSize != cfg.PageSize {
		t.Fatalf("identify geometry mismatch: %+v", id)
	}
	if id.CellType != cfg.Cell.String() {
		t.Fatalf("cell type %q", id.CellType)
	}
	if id.RawCapacity == 0 || id.LogicalCapacity == 0 || id.LogicalCapacity >= id.RawCapacity {
		t.Fatalf("capacities: raw=%d logical=%d", id.RawCapacity, id.LogicalCapacity)
	}
	if id.HMBEnabled {
		t.Fatal("HMB reported enabled before handshake")
	}
	r, err := hmb.New(hmb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableHMB(r)
	if !c.Identify().HMBEnabled {
		t.Fatal("HMB not reported after handshake")
	}
	if s := id.String(); !strings.Contains(s, "ch x") || !strings.Contains(s, "GiB") {
		t.Fatalf("identify string: %q", s)
	}
}

func TestSmartCounters(t *testing.T) {
	c := newCtrl(t)
	preload(t, c, 8)
	// One block read, one write, one fine read.
	buf := make([]byte, c.PageSize())
	if comp := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 1, Data: buf}); !comp.Ok() {
		t.Fatalf("read: %+v", comp)
	}
	data := make([]byte, c.PageSize())
	if comp := c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 20, Pages: 1, Data: data}); !comp.Ok() {
		t.Fatalf("write: %+v", comp)
	}
	r, err := hmb.New(hmb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableHMB(r)
	if err := r.Info().Push(hmb.InfoRecord{LBA: 1, ByteOff: 0, ByteLen: 64, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	if comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{1}}); !comp.Ok() {
		t.Fatalf("fine read: %+v", comp)
	}

	s := c.Smart()
	if s.HostReadCommands != 1 || s.HostWriteCommands != 1 || s.FineReadCommands != 1 {
		t.Fatalf("command counters: %+v", s)
	}
	if s.BytesRead != uint64(c.PageSize())+64 || s.BytesWritten != uint64(c.PageSize()) {
		t.Fatalf("byte counters: read=%d written=%d", s.BytesRead, s.BytesWritten)
	}
	if s.NANDReads < 2 || s.NANDProgams < 1 {
		t.Fatalf("nand counters: %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "fine reads") || !strings.Contains(str, "wear") {
		t.Fatalf("smart string: %q", str)
	}
}

func TestSmartWearAfterChurn(t *testing.T) {
	c := newCtrl(t)
	data := make([]byte, c.PageSize())
	var now = c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 0, Pages: 1, Data: data}).Done
	working := c.LogicalPages() / 2
	for i := 0; i < int(c.Array().Config().TotalPages()); i++ {
		comp := c.Execute(now, &nvme.Command{Op: nvme.OpWrite, LBA: uint64(i) % working, Pages: 1, Data: data})
		if !comp.Ok() {
			t.Fatalf("write %d: %+v", i, comp)
		}
		now = comp.Done
	}
	s := c.Smart()
	if s.GCRuns == 0 || s.NANDErases == 0 {
		t.Fatalf("churn produced no GC: %+v", s)
	}
	if s.WriteAmplification < 1 {
		t.Fatalf("WA = %v", s.WriteAmplification)
	}
	if s.MaxEraseCount == 0 || s.AvgEraseCount <= 0 {
		t.Fatalf("wear: %+v", s)
	}
	// Wear-level integration: the FTL tick runs through the controller's
	// stack without violating invariants.
	if _, _, err := c.FTL().WearLevelTick(now); err != nil {
		t.Fatal(err)
	}
	if err := c.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = ftl.DefaultConfig()
}
