package ssd

// The controller's reliability machinery: every NAND page load funnels
// through readLBAInto, where the fault injector may flip raw bits in the
// sensed page. The ECC engine then walks a tiered read-retry ladder —
// each step re-senses the page with shifted read-reference voltages,
// costing a full tR plus channel transfer — until the page decodes or the
// retry budget is exhausted, at which point the read surfaces
// nvme.ErrUncorrectable (StatusMediaError on the wire). Writes funnel
// through programLBA, where an injected program/verify failure makes the
// firmware re-issue the program; the FTL naturally remaps it to a fresh
// physical page, which is exactly what real firmware does on program
// failure.

import (
	"pipette/internal/fault"
	"pipette/internal/ftl"
	"pipette/internal/nand"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// FaultStats counts the controller's fault-recovery activity. All zeros
// when no injector is armed.
type FaultStats struct {
	ECCRetries      uint64 // read-retry ladder steps charged
	Uncorrectable   uint64 // reads that exhausted the retry budget
	RingCorruptions uint64 // Info-Area records rejected by checksum
	DMACorruptions  uint64 // fine-read payloads corrupted in flight
	ProgramRetries  uint64 // programs re-issued after a verify failure
}

// SetInjector arms fault injection on the device: raw bit errors on page
// reads (the rber* rule resolves against the media's datasheet RBER and
// the bits sensed per page), program/verify failures on writes, and DMA
// payload corruption on fine reads.
func (c *Controller) SetInjector(inj *fault.Injector) {
	c.inj = inj
	inj.ResolveRBER(fault.SiteNANDRead, nand.RBERFor(c.cfg.NAND.Cell), c.cfg.NAND.PageSize*8)
}

// Faults snapshots the recovery counters.
func (c *Controller) Faults() FaultStats {
	return FaultStats{
		ECCRetries:      c.fltECCRetry.Load(),
		Uncorrectable:   c.fltUncorrect.Load(),
		RingCorruptions: c.fltRingCorrupt.Load(),
		DMACorruptions:  c.fltDMACorrupt.Load(),
		ProgramRetries:  c.fltProgRetry.Load(),
	}
}

// readLBAInto is the single page-load path shared by block reads, fine
// reads, and CMB loads: write-buffer coherence first, then NAND via the
// FTL, then ECC recovery when the injector flips bits in the sensed page.
// loaded reports whether NAND was touched (callers count PagesLoaded from
// it). On an uncorrectable page the returned error wraps
// nvme.ErrUncorrectable and dst must not be trusted.
func (c *Controller) readLBAInto(now sim.Time, lba uint64, dst []byte) (done sim.Time, loaded bool, err error) {
	if buffered, ok := c.bufLookup(lba); ok {
		// Write-buffer hit: served from controller DRAM, no media involved.
		copy(dst, buffered)
		return now, false, nil
	}
	done, err = c.fl.ReadInto(now, ftl.LBA(lba), dst)
	if err != nil {
		return done, false, err
	}
	if out := c.inj.Check(fault.SiteNANDRead, lba); out.Hit {
		// Everything attributed from here on is ladder work: capture the
		// attribution frontier so the re-senses the FTL marks as NAND time
		// get moved to the retry stage, keeping conservation exact.
		frontier := c.sa.Cursor()
		done, err = c.eccRecover(done, lba, dst, out.Sev)
		c.sa.Reattribute(frontier, telemetry.StageRetry)
		c.sa.Mark(telemetry.StageRetry, done)
	}
	return done, true, err
}

// eccRecover walks the tiered read-retry ladder for a page whose first
// sense had raw bit errors past the default correction strength. The
// severity draw decides the outcome: the bottom ECCUncorrectableFrac of
// the spectrum burns the whole ladder and still fails; the rest recovers
// after a severity-proportional number of steps. Every step re-issues the
// page read through the FTL, so it charges a full tR plus channel
// transfer on the NAND resource timelines — fault recovery is slower, not
// wrong.
func (c *Controller) eccRecover(now sim.Time, lba uint64, dst []byte, sev float64) (sim.Time, error) {
	steps := c.cfg.ECCRetrySteps
	uncorrectable := sev < c.cfg.ECCUncorrectableFrac || steps <= 0
	n := steps
	if !uncorrectable {
		frac := (sev - c.cfg.ECCUncorrectableFrac) / (1 - c.cfg.ECCUncorrectableFrac)
		n = 1 + int(frac*float64(steps))
		if n > steps {
			n = steps
		}
	}
	t := now
	for i := 0; i < n; i++ {
		var err error
		if t, err = c.fl.ReadInto(t, ftl.LBA(lba), dst); err != nil {
			return t, err
		}
		c.fltECCRetry.Inc()
	}
	if uncorrectable {
		c.fltUncorrect.Inc()
		return t, nvme.ErrUncorrectable
	}
	return t, nil
}

// programLBA is the single page-program path shared by inline writes and
// write-buffer destage. An injected program/verify failure re-issues the
// program from its completion time; the FTL allocates a fresh physical
// page for the retry, modeling firmware's rewrite-elsewhere recovery.
func (c *Controller) programLBA(now sim.Time, lba uint64, data []byte) (sim.Time, error) {
	done, err := c.fl.Write(now, ftl.LBA(lba), data)
	if err != nil {
		return done, err
	}
	if out := c.inj.Check(fault.SiteNANDProgram, lba); out.Hit {
		c.fltProgRetry.Inc()
		done, err = c.fl.Write(done, ftl.LBA(lba), data)
	}
	return done, err
}
