package ssd

import (
	"bytes"
	"errors"
	"testing"

	"pipette/internal/fault"
	"pipette/internal/hmb"
	"pipette/internal/nvme"
)

// armed builds a controller with a fault injector from the given profile.
func armed(t testing.TB, profile string, seed uint64) *Controller {
	t.Helper()
	c := newCtrl(t)
	p, err := fault.ParseProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInjector(p.NewInjector(seed))
	return c
}

func TestECCRetrySlowsButCorrects(t *testing.T) {
	// Severity spectrum above the uncorrectable fraction: every hit
	// recovers after retries. ByteOff-free block read of one page.
	c := armed(t, "nand.read:1#1", 7)
	c.cfg.ECCUncorrectableFrac = 0 // force the recoverable branch
	preload(t, c, 2)

	clean := newCtrl(t)
	preload(t, clean, 2)

	buf := make([]byte, c.PageSize())
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 1, Pages: 1, Data: buf})
	if !comp.Ok() {
		t.Fatalf("faulted read failed: %+v", comp)
	}
	ref := make([]byte, clean.PageSize())
	compRef := clean.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 1, Pages: 1, Data: ref})
	if !compRef.Ok() {
		t.Fatalf("clean read failed: %+v", compRef)
	}
	if !bytes.Equal(buf, expected(c, 1, 0, c.PageSize())) {
		t.Fatal("recovered read returned wrong bytes")
	}
	f := c.Faults()
	if f.ECCRetries == 0 {
		t.Fatal("no retry charged for an injected bit-error burst")
	}
	if f.Uncorrectable != 0 {
		t.Fatalf("unexpected uncorrectable: %+v", f)
	}
	if comp.Done <= compRef.Done {
		t.Fatalf("retry did not cost time: faulted %v <= clean %v", comp.Done, compRef.Done)
	}
}

func TestECCUncorrectable(t *testing.T) {
	c := armed(t, "nand.read:1#1", 7)
	c.cfg.ECCUncorrectableFrac = 1 // every hit exhausts the ladder
	preload(t, c, 2)

	buf := make([]byte, c.PageSize())
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 0, Pages: 1, Data: buf})
	if comp.Ok() {
		t.Fatal("uncorrectable page read succeeded")
	}
	if comp.Status != nvme.StatusMediaError {
		t.Fatalf("status = %v, want MediaError", comp.Status)
	}
	if !errors.Is(comp.Status.Err(), nvme.ErrUncorrectable) {
		t.Fatal("MediaError does not map to ErrUncorrectable")
	}
	f := c.Faults()
	if f.Uncorrectable != 1 {
		t.Fatalf("Uncorrectable = %d, want 1", f.Uncorrectable)
	}
	// The full ladder is still charged before giving up.
	if f.ECCRetries != uint64(c.cfg.ECCRetrySteps) {
		t.Fatalf("ECCRetries = %d, want full ladder %d", f.ECCRetries, c.cfg.ECCRetrySteps)
	}
}

func TestFineReadRingCorruption(t *testing.T) {
	c := armed(t, "hmb.ring:1#1", 7)
	preload(t, c, 4)
	region := newHMB(t)
	c.EnableHMB(region)
	region.Info().SetInjector(c.inj)

	if err := region.Info().Push(hmb.InfoRecord{LBA: 3, ByteOff: 100, ByteLen: 64, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{3}})
	if comp.Status != nvme.StatusCorruptRing {
		t.Fatalf("status = %v, want CorruptRing", comp.Status)
	}
	if region.Info().Pending() != 0 {
		t.Fatal("corrupt record wedged the ring (head not advanced)")
	}
	if c.Faults().RingCorruptions != 1 {
		t.Fatalf("RingCorruptions = %d, want 1", c.Faults().RingCorruptions)
	}

	// The injection budget (#1) is spent: the next fine read is clean.
	if err := region.Info().Push(hmb.InfoRecord{LBA: 3, ByteOff: 100, ByteLen: 64, Dest: 0}); err != nil {
		t.Fatal(err)
	}
	comp = c.Execute(comp.Done, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{3}})
	if !comp.Ok() {
		t.Fatalf("post-budget fine read failed: %+v", comp)
	}
	got := make([]byte, 64)
	if err := region.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, expected(c, 3, 100, 64)) {
		t.Fatal("post-corruption fine read returned wrong bytes")
	}
}

func TestFineReadDMACorruptionDetectable(t *testing.T) {
	c := armed(t, "nvme.dma:1#1", 7)
	preload(t, c, 4)
	region := newHMB(t)
	c.EnableHMB(region)

	const dest, off, n = 256, 500, 96
	if err := region.Info().Push(hmb.InfoRecord{LBA: 2, ByteOff: off, ByteLen: n, Dest: dest}); err != nil {
		t.Fatal(err)
	}
	comp := c.Execute(0, &nvme.Command{Op: nvme.OpFineRead, FineLBAs: []uint64{2}})
	if !comp.Ok() {
		t.Fatalf("fine read: %+v", comp)
	}
	got := make([]byte, n)
	if err := region.ReadAt(dest, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, expected(c, 2, off, n)) {
		t.Fatal("payload not corrupted at p=1")
	}
	// The host-side validation contract: the device-computed checksum
	// disagrees with the landed bytes, so the host detects the corruption.
	if fault.Sum32(got) == comp.PayloadSum {
		t.Fatal("corruption not detectable from PayloadSum")
	}
	if c.Faults().DMACorruptions != 1 {
		t.Fatalf("DMACorruptions = %d, want 1", c.Faults().DMACorruptions)
	}
}

func TestProgramRetryRemaps(t *testing.T) {
	c := armed(t, "nand.program:1#1", 7)
	data := bytes.Repeat([]byte{0xAB}, c.PageSize())

	clean := newCtrl(t)
	compRef := clean.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 5, Pages: 1, Data: append([]byte(nil), data...)})
	if !compRef.Ok() {
		t.Fatalf("clean write: %+v", compRef)
	}

	comp := c.Execute(0, &nvme.Command{Op: nvme.OpWrite, LBA: 5, Pages: 1, Data: data})
	if !comp.Ok() {
		t.Fatalf("faulted write: %+v", comp)
	}
	if c.Faults().ProgramRetries != 1 {
		t.Fatalf("ProgramRetries = %d, want 1", c.Faults().ProgramRetries)
	}
	if comp.Done <= compRef.Done {
		t.Fatal("program retry did not cost time")
	}
	// The rewritten page reads back correctly.
	buf := make([]byte, c.PageSize())
	rcomp := c.Execute(comp.Done, &nvme.Command{Op: nvme.OpRead, LBA: 5, Pages: 1, Data: buf})
	if !rcomp.Ok() {
		t.Fatalf("read-back: %+v", rcomp)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read-back after program retry returned wrong bytes")
	}
}

// BenchmarkBlockReadNoFaults guards the acceptance criterion that the Nop
// injector adds zero allocations to the read hot path.
func BenchmarkBlockReadNoFaults(b *testing.B) {
	c := newCtrl(b)
	preload(b, c, 8)
	buf := make([]byte, c.PageSize())
	cmd := nvme.Command{Op: nvme.OpRead, LBA: 1, Pages: 1, Data: buf}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comp := c.Execute(0, &cmd); !comp.Ok() {
			b.Fatal(comp.Status)
		}
	}
}
