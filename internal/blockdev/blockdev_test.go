package blockdev

import (
	"bytes"
	"testing"

	"pipette/internal/ftl"
	"pipette/internal/nvme"
	"pipette/internal/ssd"
)

func testStack(t testing.TB) (*ssd.Controller, *Layer) {
	t.Helper()
	cfg := ssd.DefaultConfig()
	cfg.NAND.Channels = 2
	cfg.NAND.WaysPerChannel = 2
	cfg.NAND.PlanesPerDie = 1
	cfg.NAND.BlocksPerPlane = 16
	cfg.NAND.PagesPerBlock = 32
	ctrl, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := nvme.NewDriver(ctrl, 64, nvme.DefaultCosts())
	layer, err := New(drv, ctrl.PageSize(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, layer
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, DefaultConfig()); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := New(nil, 4096, Config{MaxPagesPerCommand: 0}); err == nil {
		t.Error("zero MaxPagesPerCommand accepted")
	}
}

func TestCoalesce(t *testing.T) {
	_, l := testStack(t)
	cases := []struct {
		in   []uint64
		want []run
	}{
		{nil, nil},
		{[]uint64{5}, []run{{5, 1}}},
		{[]uint64{5, 6, 7}, []run{{5, 3}}},
		{[]uint64{7, 5, 6}, []run{{5, 3}}}, // sorted before merging
		{[]uint64{1, 3, 5}, []run{{1, 1}, {3, 1}, {5, 1}}},
		{[]uint64{1, 2, 4, 5}, []run{{1, 2}, {4, 2}}},
		{[]uint64{2, 2, 3}, []run{{2, 2}}}, // duplicates collapse
	}
	for i, c := range cases {
		got := l.coalesce(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d run %d: got %v, want %v", i, j, got[j], c.want[j])
			}
		}
	}
}

func TestCoalesceRespectsMaxPages(t *testing.T) {
	_, l := testStack(t)
	l.cfg.MaxPagesPerCommand = 2
	got := l.coalesce([]uint64{1, 2, 3, 4, 5})
	if len(got) != 3 || got[0].count != 2 || got[1].count != 2 || got[2].count != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestReadPagesMergedCommand(t *testing.T) {
	ctrl, l := testStack(t)
	for i := 0; i < 8; i++ {
		if err := ctrl.FTL().Preload(ftl.LBA(i)); err != nil {
			t.Fatal(err)
		}
	}
	pages, done, moved, err := l.ReadPages(0, []uint64{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 4 {
		t.Fatalf("got %d pages", len(pages))
	}
	if moved != uint64(4*ctrl.PageSize()) {
		t.Fatalf("moved %d bytes", moved)
	}
	if done <= 0 {
		t.Fatal("no time consumed")
	}
	st := l.Stats()
	if st.ReadCommands != 1 {
		t.Fatalf("adjacent pages issued %d commands, want 1 (merge broken)", st.ReadCommands)
	}
	if st.PagesRead != 4 || st.ReadRequests != 4 {
		t.Fatalf("stats %+v", st)
	}
	// Verify content against a direct device read.
	buf := make([]byte, ctrl.PageSize())
	comp := ctrl.Execute(0, &nvme.Command{Op: nvme.OpRead, LBA: 3, Pages: 1, Data: buf})
	if !comp.Ok() || !bytes.Equal(pages[3], buf) {
		t.Fatal("merged read content mismatch")
	}
}

func TestReadPagesScatteredRace(t *testing.T) {
	ctrl, l := testStack(t)
	for i := 0; i < 16; i++ {
		if err := ctrl.FTL().Preload(ftl.LBA(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Two disjoint runs race on the device: the total should be much less
	// than two serialized device reads.
	_, oneDone, _, err := l.ReadPages(0, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	_, twoDone, _, err := l.ReadPages(0, []uint64{8, 1})
	if err != nil {
		t.Fatal(err)
	}
	if twoDone >= 2*oneDone {
		t.Fatalf("scattered read %v vs single %v: no overlap", twoDone, oneDone)
	}
	if l.Stats().ReadCommands != 3 {
		t.Fatalf("commands = %d, want 3", l.Stats().ReadCommands)
	}
}

func TestReadPagesEmpty(t *testing.T) {
	_, l := testStack(t)
	pages, done, moved, err := l.ReadPages(42, nil)
	if err != nil || pages != nil || done != 42 || moved != 0 {
		t.Fatalf("empty read = %v,%v,%d,%v", pages, done, moved, err)
	}
}

func TestReadUnmappedFails(t *testing.T) {
	_, l := testStack(t)
	if _, _, _, err := l.ReadPages(0, []uint64{999}); err == nil {
		t.Fatal("unmapped read succeeded")
	}
}

func TestWritePages(t *testing.T) {
	ctrl, l := testStack(t)
	data := make([]byte, 3*ctrl.PageSize())
	for i := range data {
		data[i] = byte(i)
	}
	done, moved, err := l.WritePages(0, 10, data)
	if err != nil {
		t.Fatal(err)
	}
	if moved != uint64(len(data)) || done <= 0 {
		t.Fatalf("moved=%d done=%v", moved, done)
	}
	pages, _, _, err := l.ReadPages(done, []uint64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(pages[uint64(10+i)], data[i*ctrl.PageSize():(i+1)*ctrl.PageSize()]) {
			t.Fatalf("page %d mismatch", i)
		}
	}
	// Unaligned write rejected.
	if _, _, err := l.WritePages(0, 0, data[:100]); err == nil {
		t.Error("unaligned write accepted")
	}
}

func TestWriteSplitsAtMax(t *testing.T) {
	ctrl, l := testStack(t)
	l.cfg.MaxPagesPerCommand = 2
	data := make([]byte, 5*ctrl.PageSize())
	if _, _, err := l.WritePages(0, 0, data); err != nil {
		t.Fatal(err)
	}
	if l.Stats().WriteCommands != 3 {
		t.Fatalf("WriteCommands = %d, want 3", l.Stats().WriteCommands)
	}
}

func TestTrim(t *testing.T) {
	ctrl, l := testStack(t)
	data := make([]byte, ctrl.PageSize())
	if _, _, err := l.WritePages(0, 5, data); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Trim(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := l.ReadPages(0, []uint64{5}); err == nil {
		t.Fatal("read after trim succeeded")
	}
}
