// Package blockdev models the generic block layer: it takes page-granular
// read/write requests from the filesystem, coalesces adjacent LBAs into
// larger device commands (the merge step of §2.1's read path), and
// dispatches them through the NVMe driver, charging a per-request software
// cost for the queueing/scheduling machinery.
//
// Commands for disjoint runs are issued at the same virtual instant —
// NVMe queue depth lets them race across the device's channels — and the
// aggregate completes when the last one does.
package blockdev

import (
	"errors"
	"fmt"
	"sort"

	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Config tunes the layer.
type Config struct {
	// PerRequestOverhead is the block-layer software cost per merged
	// device command (request allocation, scheduling, completion path).
	PerRequestOverhead sim.Time
	// MaxPagesPerCommand bounds merging (device MDTS).
	MaxPagesPerCommand int
}

// DefaultConfig returns kernel-flavoured costs.
func DefaultConfig() Config {
	return Config{
		PerRequestOverhead: 3 * sim.Microsecond,
		MaxPagesPerCommand: 64,
	}
}

// Stats counts layer activity.
type Stats struct {
	ReadRequests  uint64 // page-granular reads accepted
	WriteRequests uint64
	ReadCommands  uint64 // device commands after merging
	WriteCommands uint64
	PagesRead     uint64
	PagesWritten  uint64
}

// Layer is the block layer bound to one device queue pair.
type Layer struct {
	cfg      Config
	drv      *nvme.Driver
	pageSize int
	stats    Stats
	tr       telemetry.Tracer
	sa       *telemetry.StageAccount

	// Request-scoped scratch (the layer, like the whole stack, is
	// single-threaded): sort buffer and run list for coalescing, and the
	// command data buffer reused across merged commands.
	sortBuf []uint64
	runs    []run
	readBuf []byte
}

// New creates a layer over a driver.
func New(drv *nvme.Driver, pageSize int, cfg Config) (*Layer, error) {
	if pageSize <= 0 {
		return nil, errors.New("blockdev: page size must be positive")
	}
	if cfg.MaxPagesPerCommand <= 0 {
		return nil, errors.New("blockdev: MaxPagesPerCommand must be positive")
	}
	return &Layer{cfg: cfg, drv: drv, pageSize: pageSize, tr: telemetry.Nop()}, nil
}

// Stats returns a copy of the counters.
func (l *Layer) Stats() Stats { return l.stats }

// SetTracer installs a tracer; each merged device command becomes one span
// on the block track.
func (l *Layer) SetTracer(tr telemetry.Tracer) { l.tr = telemetry.OrNop(tr) }

// SetStages installs the per-request stage account; the layer attributes
// its per-command software overhead to the queue stage.
func (l *Layer) SetStages(sa *telemetry.StageAccount) { l.sa = sa }

// run is a merged contiguous extent.
type run struct {
	start uint64
	count int
}

// coalesce sorts and merges page LBAs into contiguous runs, capped at
// MaxPagesPerCommand. Duplicate LBAs are collapsed. The returned slice is
// layer-owned scratch, valid until the next call.
func (l *Layer) coalesce(lbas []uint64) []run {
	if len(lbas) == 0 {
		return nil
	}
	sorted := append(l.sortBuf[:0], lbas...)
	l.sortBuf = sorted
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	runs := l.runs[:0]
	cur := run{start: sorted[0], count: 1}
	for _, lba := range sorted[1:] {
		switch {
		case lba == cur.start+uint64(cur.count)-1:
			// duplicate: collapse
		case lba == cur.start+uint64(cur.count) && cur.count < l.cfg.MaxPagesPerCommand:
			cur.count++
		default:
			runs = append(runs, cur)
			cur = run{start: lba, count: 1}
		}
	}
	l.runs = append(runs, cur)
	return l.runs
}

// ReadPagesEach reads the given page LBAs and delivers each page's content
// through deliver, in ascending LBA order (duplicates delivered once). The
// data slice is layer-owned scratch, valid only for the duration of the
// callback — copy what must outlive it. It returns the completion time of
// the last command and the host bytes moved. All merged commands issue at
// now and race on the device.
func (l *Layer) ReadPagesEach(now sim.Time, lbas []uint64, deliver func(lba uint64, data []byte)) (sim.Time, uint64, error) {
	if len(lbas) == 0 {
		return now, 0, nil
	}
	l.stats.ReadRequests += uint64(len(lbas))
	done := now
	var moved uint64
	for _, r := range l.coalesce(lbas) {
		need := r.count * l.pageSize
		if cap(l.readBuf) < need {
			l.readBuf = make([]byte, need)
		}
		buf := l.readBuf[:need]
		issueAt := now + l.cfg.PerRequestOverhead
		l.sa.Mark(telemetry.StageQueue, issueAt)
		comp, err := l.drv.Submit(issueAt, nvme.Command{
			Op: nvme.OpRead, LBA: r.start, Pages: r.count, Data: buf,
		})
		if err != nil {
			return now, moved, fmt.Errorf("blockdev: read submit: %w", err)
		}
		if !comp.Ok() {
			return comp.Done, moved, fmt.Errorf("blockdev: read [%d,+%d): %w", r.start, r.count, comp.Status.Err())
		}
		for i := 0; i < r.count; i++ {
			deliver(r.start+uint64(i), buf[i*l.pageSize:(i+1)*l.pageSize])
		}
		if l.tr.Enabled() {
			l.tr.Span(telemetry.TrackBlock, "read", now, comp.Done)
		}
		if comp.Done > done {
			done = comp.Done
		}
		moved += comp.BytesMoved
		l.stats.ReadCommands++
		l.stats.PagesRead += uint64(r.count)
	}
	return done, moved, nil
}

// ReadPages reads the given page LBAs. It returns the page contents keyed
// by LBA and the completion time of the last command. All merged commands
// issue at now and race on the device. Hot paths should prefer
// ReadPagesEach, which does not allocate the result map.
func (l *Layer) ReadPages(now sim.Time, lbas []uint64) (map[uint64][]byte, sim.Time, uint64, error) {
	if len(lbas) == 0 {
		return nil, now, 0, nil
	}
	out := make(map[uint64][]byte, len(lbas))
	done, moved, err := l.ReadPagesEach(now, lbas, func(lba uint64, data []byte) {
		page := make([]byte, len(data))
		copy(page, data)
		out[lba] = page
	})
	if err != nil {
		return nil, done, moved, err
	}
	return out, done, moved, nil
}

// WritePages writes contiguous pages starting at lba. data must be
// page-aligned in length. Commands are split at MaxPagesPerCommand and
// chained (writes serialize on the FTL frontier anyway).
func (l *Layer) WritePages(now sim.Time, lba uint64, data []byte) (sim.Time, uint64, error) {
	if len(data) == 0 || len(data)%l.pageSize != 0 {
		return now, 0, fmt.Errorf("blockdev: write of %d bytes not page-aligned", len(data))
	}
	pages := len(data) / l.pageSize
	l.stats.WriteRequests += uint64(pages)
	t := now
	var moved uint64
	for off := 0; off < pages; off += l.cfg.MaxPagesPerCommand {
		n := l.cfg.MaxPagesPerCommand
		if off+n > pages {
			n = pages - off
		}
		issueAt := t + l.cfg.PerRequestOverhead
		l.sa.Mark(telemetry.StageQueue, issueAt)
		comp, err := l.drv.Submit(issueAt, nvme.Command{
			Op:    nvme.OpWrite,
			LBA:   lba + uint64(off),
			Pages: n,
			Data:  data[off*l.pageSize : (off+n)*l.pageSize],
		})
		if err != nil {
			return t, moved, fmt.Errorf("blockdev: write submit: %w", err)
		}
		if !comp.Ok() {
			return comp.Done, moved, fmt.Errorf("blockdev: write [%d,+%d): %w", lba+uint64(off), n, comp.Status.Err())
		}
		if l.tr.Enabled() {
			l.tr.Span(telemetry.TrackBlock, "write", t, comp.Done)
		}
		t = comp.Done
		moved += comp.BytesMoved
		l.stats.WriteCommands++
		l.stats.PagesWritten += uint64(n)
	}
	return t, moved, nil
}

// Trim discards the given contiguous page range.
func (l *Layer) Trim(now sim.Time, lba uint64, pages int) (sim.Time, error) {
	issueAt := now + l.cfg.PerRequestOverhead
	l.sa.Mark(telemetry.StageQueue, issueAt)
	comp, err := l.drv.Submit(issueAt, nvme.Command{
		Op: nvme.OpTrim, LBA: lba, Pages: pages,
	})
	if err != nil {
		return now, err
	}
	if !comp.Ok() {
		return comp.Done, fmt.Errorf("blockdev: trim: %w", comp.Status.Err())
	}
	return comp.Done, nil
}
