// Command pipette-kv drives the log-structured key-value store over a
// simulated Pipette system with YCSB-style workloads. It loads a keyspace,
// replays one or more of the core workloads A-F, and reports store counters
// plus the system's I/O statistics — the quickest way to see the
// fine-grained read path's effect on a real storage application
// (compare -fine=true with -fine=false).
//
// Usage:
//
//	pipette-kv -records 100000 -ops 200000 -workload A,C
//	pipette-kv -workload B -fine=false
//	pipette-kv -records 50000 -values 64 -seed 7
//	pipette-kv -listen :9102                  # live /metrics while replaying
//	pipette-kv -fault-profile nand.read:rber*20,hmb.ring:0.01
//
// With -shards > 0 the command serves the keyspace from a sharded
// multi-SSD tier instead of one device: consistent-hash routing,
// R-way replication, per-tenant namespaces and QoS. A fault profile then
// degrades member 0 only — the tier, not the experiment, absorbs it.
//
//	pipette-kv -shards 4 -replicas 2 -tenants 2 -skew 0.99 -records 4096 -ops 20000
//	pipette-kv -shards 4 -replicas 2 -fault-profile nand.read:0.6 -listen :9102
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"pipette"
	"pipette/internal/buildinfo"
	"pipette/internal/cluster"
	"pipette/internal/fault"
	"pipette/internal/kv"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

func main() {
	var (
		records   = flag.Uint64("records", 100_000, "records preloaded into the store")
		ops       = flag.Int("ops", 100_000, "operations replayed per workload")
		wls       = flag.String("workload", "A,C", "comma-separated YCSB workloads (A-F)")
		fine      = flag.Bool("fine", true, "serve Gets through the fine-grained read path")
		indexEng  = flag.String("index", "hash", "index engine: hash, btree, or lsm")
		valBytes  = flag.Int("values", 0, "fixed value size in bytes (0 = mixed 64..512)")
		capMB     = flag.Int64("capacity", 2048, "flash capacity (MiB)")
		pcMB      = flag.Int64("pagecache", 16, "page cache budget (MiB)")
		fgMB      = flag.Int("finecache", 8, "fine-grained read cache arena (MiB)")
		seed      = flag.Uint64("seed", 42, "workload seed")
		version   = flag.Bool("version", false, "print build identity and exit")
		flightOut = flag.String("flight-dump", "", "single-device mode: arm the flight recorder; a fatal error or panic dumps the recent-event ring to this file as JSON")
		listen    = flag.String("listen", "", "serve live /metrics, /healthz, and /progress on this address (e.g. :9102)")
		faultProf = flag.String("fault-profile", "", "arm fault injection: site:spec rules, e.g. 'nand.read:rber*20,hmb.ring:0.01' (empty = off)")
		faultSeed = flag.Uint64("fault-seed", 0x5eed, "seed for the fault injector's per-site decision streams")

		shards     = flag.Int("shards", 0, "serve from a sharded multi-SSD tier with this many members (0 = single device)")
		replicas   = flag.Int("replicas", 1, "cluster mode: copies per key")
		tenants    = flag.Int("tenants", 1, "cluster mode: tenant namespaces")
		skew       = flag.Float64("skew", 0, "cluster mode: per-tenant Zipf theta in [0,1), 0 = uniform keys")
		rate       = flag.Float64("rate", 60_000, "cluster mode: offered Poisson arrival rate (ops/s)")
		tenantRate = flag.Float64("tenant-rate", 0, "cluster mode: per-tenant token-bucket rate (ops/s, 0 = no limit)")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "pipette-kv")
		return
	}
	if _, err := fault.ParseProfile(*faultProf); err != nil {
		log.Fatalf("pipette-kv: %v", err)
	}

	if *shards > 0 {
		if *flightOut != "" {
			// Cluster members are private stacks behind the tier's router;
			// there is no single tracer hook to arm, so fail loudly rather
			// than silently recording nothing.
			log.Fatal("pipette-kv: -flight-dump is single-device only (incompatible with -shards)")
		}
		if err := runCluster(clusterOpts{
			shards:     *shards,
			replicas:   *replicas,
			tenants:    *tenants,
			skew:       *skew,
			rate:       *rate,
			tenantRate: *tenantRate,
			records:    *records,
			ops:        *ops,
			listen:     *listen,
			faultProf:  *faultProf,
			faultSeed:  *faultSeed,
		}); err != nil {
			log.Fatalf("pipette-kv: %v", err)
		}
		return
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  *capMB << 20,
		PageCacheBytes: *pcMB << 20,
		FineCacheBytes: *fgMB << 20,
		FaultProfile:   *faultProf,
		FaultSeed:      *faultSeed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// -flight-dump arms the ring on every layer of the system. The file is
	// created eagerly so a bad path fails before the load phase; the dump
	// fires at most once, from the first fatal error or panic.
	var dumpFlight func(reason string)
	if *flightOut != "" {
		flight := telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents)
		flightFile, err := os.Create(*flightOut)
		if err != nil {
			log.Fatalf("pipette-kv: %v", err)
		}
		defer flightFile.Close()
		var once sync.Once
		dumpFlight = func(reason string) {
			once.Do(func() {
				if derr := flight.Dump(flightFile, reason, sys.Now()); derr != nil {
					fmt.Fprintf(os.Stderr, "pipette-kv: flight dump: %v\n", derr)
					return
				}
				fmt.Fprintf(os.Stderr, "pipette-kv: flight recorder dumped to %s (%s)\n", *flightOut, reason)
			})
		}
		sys.SetTracer(flight)
		defer func() {
			if r := recover(); r != nil {
				dumpFlight(fmt.Sprintf("panic: %v", r))
				panic(r)
			}
		}()
	}

	if *listen != "" {
		reg := telemetry.NewRegistry(telemetry.L("job", "pipette-kv"))
		buildinfo.Register(reg, "pipette-kv")
		sys.RegisterMetrics(reg)
		srv, err := telemetry.Serve(*listen, reg, nil)
		if err != nil {
			log.Fatalf("pipette-kv: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pipette-kv: serving /metrics and /healthz on http://%s\n", srv.Addr())
	}

	for _, wl := range strings.Split(*wls, ",") {
		wl = strings.TrimSpace(wl)
		if wl == "" {
			continue
		}
		if err := runWorkload(sys, wl, *records, *ops, *valBytes, *seed, *fine, *indexEng); err != nil {
			if dumpFlight != nil {
				dumpFlight(fmt.Sprintf("fatal: workload %s: %v", wl, err))
			}
			log.Fatalf("workload %s: %v", wl, err)
		}
	}

	fmt.Println("system report:")
	fmt.Println(sys.Report())
}

// clusterOpts carries the cluster-mode flag values.
type clusterOpts struct {
	shards, replicas, tenants int
	skew, rate, tenantRate    float64
	records                   uint64
	ops                       int
	listen, faultProf         string
	faultSeed                 uint64
}

// runCluster serves the keyspace from the sharded tier: load every
// tenant's records onto their replica sets, seal (arming member 0's fault
// profile, if any), replay a multi-tenant open-loop stream, and print the
// tier's ledger. With -listen, one /metrics scrape covers every member via
// per-shard labels.
func runCluster(o clusterOpts) error {
	cfg := cluster.Config{
		Shards:     o.shards,
		Replicas:   o.replicas,
		Tenants:    o.tenants,
		Depth:      16,
		MaxQueue:   64,
		TenantRate: o.tenantRate,
	}
	if o.replicas > 1 {
		cfg.ReadPolicy = cluster.ReadHedged
		cfg.HedgeDelay = 50 * sim.Microsecond
	}
	prof, err := fault.ParseProfile(o.faultProf)
	if err != nil {
		return err
	}
	// Size each member for its slice of the replicated keyspace (values
	// average ~290 B; x3 slack covers log churn and placement imbalance).
	perShard := int64(o.records) * int64(o.tenants) * int64(o.replicas) * 290 * 3 / int64(o.shards)
	if perShard < 4<<20 {
		perShard = 4 << 20
	}
	c, err := cluster.New(cfg, func(id int) cluster.ShardConfig {
		sc := cluster.ShardConfig{DatasetBytes: perShard, FineReads: true}
		if id == 0 && !prof.Empty() {
			sc.Fault = prof
			sc.FaultSeed = o.faultSeed
			sc.ECCUncorrectableFrac = 0.5
		}
		return sc
	})
	if err != nil {
		return err
	}

	if o.listen != "" {
		reg := telemetry.NewRegistry(telemetry.L("job", "pipette-kv"))
		buildinfo.Register(reg, "pipette-kv")
		c.RegisterMetrics(reg)
		srv, err := telemetry.Serve(o.listen, reg, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pipette-kv: serving /metrics and /healthz on http://%s\n", srv.Addr())
	}

	key := func(k uint64) string { return fmt.Sprintf("user%010d", k) }
	var buf []byte
	for t := 0; t < o.tenants; t++ {
		for k := uint64(0); k < o.records; k++ {
			buf = value(buf, k^uint64(t)<<48, 0, 0)
			if err := c.Load(kv.NamespaceKey(t, key(k)), buf); err != nil {
				return err
			}
		}
	}
	start, err := c.SealLoad()
	if err != nil {
		return err
	}

	tcfgs := make([]workload.TenantConfig, o.tenants)
	for t := range tcfgs {
		tcfgs[t] = workload.TenantConfig{Weight: 1, Theta: o.skew, ReadFraction: 0.9}
	}
	mt, err := workload.NewMultiTenant(o.records, tcfgs, 42)
	if err != nil {
		return err
	}
	arr, err := workload.NewPoisson(o.rate, 99)
	if err != nil {
		return err
	}
	var reqBuf []byte
	next := func() cluster.Request {
		r := mt.Next()
		req := cluster.Request{Tenant: r.Tenant, Write: r.Write,
			Key: kv.NamespaceKey(r.Tenant, key(r.Record))}
		if r.Write {
			reqBuf = value(reqBuf, r.Record^uint64(r.Tenant)<<48, 1, 0)
			req.Val = reqBuf
		}
		return req
	}
	res, err := c.Replay(next, o.ops, cluster.ReplayOpts{
		Arrivals:            arr,
		Start:               start,
		TickEvery:           256,
		TolerateMediaErrors: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("cluster: %d shards, R=%d, %d tenants, zipf %.2f; %d records/tenant loaded in %v\n",
		o.shards, cfg.Replicas, o.tenants, o.skew, o.records, start)
	fmt.Printf("  %d offered in %v: %d ok (%.0f ops/s goodput), %d rejected, %d throttled, %d lost\n",
		res.Arrived, res.Elapsed, res.Hist.Count(), res.Goodput(),
		res.Rejected, res.Throttled, res.Lost)
	fmt.Printf("  latency: mean %.2f us, p50 %.2f us, p99 %.2f us\n",
		res.Hist.Mean().Micros(), res.Hist.Quantile(0.50).Micros(), res.Hist.Quantile(0.99).Micros())
	for _, ts := range res.Tenants {
		fmt.Printf("  tenant %d: %d arrived, %d throttled, %d rejected, %d lost, p99 %.2f us\n",
			ts.Tenant, ts.Arrived, ts.Throttled, ts.Rejected, ts.Lost,
			ts.Hist.Quantile(0.99).Micros())
	}
	for _, ss := range res.Shards {
		mark := ""
		if ss.Faulted {
			mark = " (fault profile armed)"
		}
		fmt.Printf("  shard %d: %d primary, %d execs, %d repl.writes, %d hedges, %d failovers, %d rejected, %d media errors%s\n",
			ss.Shard, ss.Primary, ss.Executions, ss.ReplicaWrites,
			ss.Hedges, ss.Failovers, ss.Rejected, ss.MediaErrors, mark)
	}
	return nil
}

func value(buf []byte, key uint64, ver uint32, fixed int) []byte {
	n := fixed
	if n == 0 {
		n = 64 + int(sim.Mix64(key^0x5eed1e)%449)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	pat := sim.Mix64(key ^ uint64(ver)<<32)
	for i := range buf {
		buf[i] = byte(pat >> (8 * (i & 7)))
	}
	return buf
}

func runWorkload(sys *pipette.System, wl string, records uint64, ops, valBytes int, seed uint64, fine bool, indexEng string) error {
	cfg, err := workload.StandardYCSB(wl, records, seed)
	if err != nil {
		return err
	}
	gen, err := workload.NewYCSB(cfg)
	if err != nil {
		return err
	}

	// One store per workload so counters and virtual time are per-run.
	kv, err := sys.OpenKV(pipette.KVOptions{
		NamePrefix: "ycsb-" + wl + "/seg-",
		BlockReads: !fine,
		Index:      indexEng,
	})
	if err != nil {
		return err
	}
	defer kv.Close()

	// Under an armed fault profile an operation may hit an uncorrectable
	// media error; that is the experiment's subject, so count it and go on.
	var lost uint64
	tolerate := func(err error) error {
		if err != nil && errors.Is(err, pipette.ErrUncorrectable) {
			lost++
			return nil
		}
		return err
	}

	key := func(k uint64) string { return fmt.Sprintf("user%010d", k) }
	var buf []byte
	loadStart := sys.Now()
	for k := uint64(0); k < records; k++ {
		buf = value(buf, k, 0, valBytes)
		if err := tolerate(kv.Put(key(k), buf)); err != nil {
			return fmt.Errorf("load %d: %w", k, err)
		}
	}
	if err := tolerate(kv.Sync()); err != nil {
		return err
	}
	loaded := sys.Now()

	ver := make(map[uint64]uint32)
	for i := 0; i < ops; i++ {
		req := gen.Next()
		switch req.Op {
		case workload.OpRead:
			if _, err := kv.Get(key(req.Key)); tolerateLookup(tolerate, err) != nil {
				return fmt.Errorf("get %d: %w", req.Key, err)
			}
		case workload.OpUpdate, workload.OpInsert:
			if req.Op == workload.OpUpdate {
				ver[req.Key]++
			}
			buf = value(buf, req.Key, ver[req.Key], valBytes)
			if err := tolerate(kv.Put(key(req.Key), buf)); err != nil {
				return fmt.Errorf("put %d: %w", req.Key, err)
			}
		case workload.OpScan:
			err := kv.Scan(key(req.Key), req.ScanLen, func(string, []byte) bool { return true })
			if tolerate(err) != nil {
				return fmt.Errorf("scan %d: %w", req.Key, err)
			}
		case workload.OpRMW:
			if _, err := kv.Get(key(req.Key)); tolerateLookup(tolerate, err) != nil {
				return fmt.Errorf("rmw get %d: %w", req.Key, err)
			}
			ver[req.Key]++
			buf = value(buf, req.Key, ver[req.Key], valBytes)
			if err := tolerate(kv.Put(key(req.Key), buf)); err != nil {
				return fmt.Errorf("rmw put %d: %w", req.Key, err)
			}
		}
		if i%256 == 255 {
			sys.MaintenanceTick()
		}
	}
	done := sys.Now()

	st := kv.Stats()
	mode := "pipette"
	if !fine {
		mode = "block I/O"
	}
	fmt.Printf("YCSB-%s (%s): %d records loaded in %v; %d ops in %v\n",
		wl, mode, records, loaded-loadStart, ops, done-loaded)
	fmt.Printf("  store: %d live keys, %d gets (%d misses), %d puts, %d deletes, %d scans\n",
		kv.Len(), st.Gets, st.Misses, st.Puts, st.Deletes, st.Scans)
	fmt.Printf("  log:   %.1f MB written, %.1f MB read, %d rotations, %d compactions (%.1f MB reclaimed)\n",
		float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20),
		st.Rotations, st.Compactions, float64(st.ReclaimedBytes)/(1<<20))
	ix := kv.IndexStats()
	switch kv.IndexKind() {
	case "btree":
		fmt.Printf("  index: btree height %d, %d nodes, %.2f node reads/lookup, %d splits, %d merges, %.1f MB idx read\n",
			ix.Height, ix.Nodes, ix.NodeReadsPerLookup(), ix.Splits, ix.Merges, float64(ix.BytesRead)/(1<<20))
	case "lsm":
		fmt.Printf("  index: lsm %d runs, %d flushes, %d merges, bloom FP %.3f, cache hit %.2f, %.1f MB idx read\n",
			ix.Runs, ix.Flushes, ix.Compactions, ix.BloomFPRate(), ix.CacheHitRate(), float64(ix.BytesRead)/(1<<20))
	default:
		fmt.Printf("  index: hash (in-memory, no index I/O)\n")
	}
	if lost > 0 {
		fmt.Printf("  faults: %d operations lost to uncorrectable media errors\n", lost)
	}
	fmt.Println()
	return nil
}

// tolerateLookup folds the two benign Get outcomes — an uncorrectable
// media error (counted by tolerate) and a key evicted by a lost write.
func tolerateLookup(tolerate func(error) error, err error) error {
	if errors.Is(err, pipette.ErrNotFound) {
		return nil
	}
	return tolerate(err)
}
