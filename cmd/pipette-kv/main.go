// Command pipette-kv drives the log-structured key-value store over a
// simulated Pipette system with YCSB-style workloads. It loads a keyspace,
// replays one or more of the core workloads A-F, and reports store counters
// plus the system's I/O statistics — the quickest way to see the
// fine-grained read path's effect on a real storage application
// (compare -fine=true with -fine=false).
//
// Usage:
//
//	pipette-kv -records 100000 -ops 200000 -workload A,C
//	pipette-kv -workload B -fine=false
//	pipette-kv -records 50000 -values 64 -seed 7
//	pipette-kv -listen :9102                  # live /metrics while replaying
//	pipette-kv -fault-profile nand.read:rber*20,hmb.ring:0.01
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pipette"
	"pipette/internal/buildinfo"
	"pipette/internal/fault"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

func main() {
	var (
		records  = flag.Uint64("records", 100_000, "records preloaded into the store")
		ops      = flag.Int("ops", 100_000, "operations replayed per workload")
		wls      = flag.String("workload", "A,C", "comma-separated YCSB workloads (A-F)")
		fine     = flag.Bool("fine", true, "serve Gets through the fine-grained read path")
		valBytes = flag.Int("values", 0, "fixed value size in bytes (0 = mixed 64..512)")
		capMB    = flag.Int64("capacity", 2048, "flash capacity (MiB)")
		pcMB     = flag.Int64("pagecache", 16, "page cache budget (MiB)")
		fgMB     = flag.Int("finecache", 8, "fine-grained read cache arena (MiB)")
		seed     = flag.Uint64("seed", 42, "workload seed")
		version  = flag.Bool("version", false, "print build identity and exit")
		listen   = flag.String("listen", "", "serve live /metrics, /healthz, and /progress on this address (e.g. :9102)")
		faultProf = flag.String("fault-profile", "", "arm fault injection: site:spec rules, e.g. 'nand.read:rber*20,hmb.ring:0.01' (empty = off)")
		faultSeed = flag.Uint64("fault-seed", 0x5eed, "seed for the fault injector's per-site decision streams")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "pipette-kv")
		return
	}
	if _, err := fault.ParseProfile(*faultProf); err != nil {
		log.Fatalf("pipette-kv: %v", err)
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  *capMB << 20,
		PageCacheBytes: *pcMB << 20,
		FineCacheBytes: *fgMB << 20,
		FaultProfile:   *faultProf,
		FaultSeed:      *faultSeed,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *listen != "" {
		reg := telemetry.NewRegistry(telemetry.L("job", "pipette-kv"))
		buildinfo.Register(reg, "pipette-kv")
		sys.RegisterMetrics(reg)
		srv, err := telemetry.Serve(*listen, reg, nil)
		if err != nil {
			log.Fatalf("pipette-kv: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pipette-kv: serving /metrics and /healthz on http://%s\n", srv.Addr())
	}

	for _, wl := range strings.Split(*wls, ",") {
		wl = strings.TrimSpace(wl)
		if wl == "" {
			continue
		}
		if err := runWorkload(sys, wl, *records, *ops, *valBytes, *seed, *fine); err != nil {
			log.Fatalf("workload %s: %v", wl, err)
		}
	}

	fmt.Println("system report:")
	fmt.Println(sys.Report())
}

func value(buf []byte, key uint64, ver uint32, fixed int) []byte {
	n := fixed
	if n == 0 {
		n = 64 + int(sim.Mix64(key^0x5eed1e)%449)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	pat := sim.Mix64(key ^ uint64(ver)<<32)
	for i := range buf {
		buf[i] = byte(pat >> (8 * (i & 7)))
	}
	return buf
}

func runWorkload(sys *pipette.System, wl string, records uint64, ops, valBytes int, seed uint64, fine bool) error {
	cfg, err := workload.StandardYCSB(wl, records, seed)
	if err != nil {
		return err
	}
	gen, err := workload.NewYCSB(cfg)
	if err != nil {
		return err
	}

	// One store per workload so counters and virtual time are per-run.
	kv, err := sys.OpenKV(pipette.KVOptions{
		NamePrefix: "ycsb-" + wl + "/seg-",
		BlockReads: !fine,
	})
	if err != nil {
		return err
	}
	defer kv.Close()

	// Under an armed fault profile an operation may hit an uncorrectable
	// media error; that is the experiment's subject, so count it and go on.
	var lost uint64
	tolerate := func(err error) error {
		if err != nil && errors.Is(err, pipette.ErrUncorrectable) {
			lost++
			return nil
		}
		return err
	}

	key := func(k uint64) string { return fmt.Sprintf("user%010d", k) }
	var buf []byte
	loadStart := sys.Now()
	for k := uint64(0); k < records; k++ {
		buf = value(buf, k, 0, valBytes)
		if err := tolerate(kv.Put(key(k), buf)); err != nil {
			return fmt.Errorf("load %d: %w", k, err)
		}
	}
	if err := tolerate(kv.Sync()); err != nil {
		return err
	}
	loaded := sys.Now()

	ver := make(map[uint64]uint32)
	for i := 0; i < ops; i++ {
		req := gen.Next()
		switch req.Op {
		case workload.OpRead:
			if _, err := kv.Get(key(req.Key)); tolerateLookup(tolerate, err) != nil {
				return fmt.Errorf("get %d: %w", req.Key, err)
			}
		case workload.OpUpdate, workload.OpInsert:
			if req.Op == workload.OpUpdate {
				ver[req.Key]++
			}
			buf = value(buf, req.Key, ver[req.Key], valBytes)
			if err := tolerate(kv.Put(key(req.Key), buf)); err != nil {
				return fmt.Errorf("put %d: %w", req.Key, err)
			}
		case workload.OpScan:
			err := kv.Scan(key(req.Key), req.ScanLen, func(string, []byte) bool { return true })
			if tolerate(err) != nil {
				return fmt.Errorf("scan %d: %w", req.Key, err)
			}
		case workload.OpRMW:
			if _, err := kv.Get(key(req.Key)); tolerateLookup(tolerate, err) != nil {
				return fmt.Errorf("rmw get %d: %w", req.Key, err)
			}
			ver[req.Key]++
			buf = value(buf, req.Key, ver[req.Key], valBytes)
			if err := tolerate(kv.Put(key(req.Key), buf)); err != nil {
				return fmt.Errorf("rmw put %d: %w", req.Key, err)
			}
		}
		if i%256 == 255 {
			sys.MaintenanceTick()
		}
	}
	done := sys.Now()

	st := kv.Stats()
	mode := "pipette"
	if !fine {
		mode = "block I/O"
	}
	fmt.Printf("YCSB-%s (%s): %d records loaded in %v; %d ops in %v\n",
		wl, mode, records, loaded-loadStart, ops, done-loaded)
	fmt.Printf("  store: %d live keys, %d gets (%d misses), %d puts, %d deletes, %d scans\n",
		kv.Len(), st.Gets, st.Misses, st.Puts, st.Deletes, st.Scans)
	fmt.Printf("  log:   %.1f MB written, %.1f MB read, %d rotations, %d compactions (%.1f MB reclaimed)\n",
		float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20),
		st.Rotations, st.Compactions, float64(st.ReclaimedBytes)/(1<<20))
	if lost > 0 {
		fmt.Printf("  faults: %d operations lost to uncorrectable media errors\n", lost)
	}
	fmt.Println()
	return nil
}

// tolerateLookup folds the two benign Get outcomes — an uncorrectable
// media error (counted by tolerate) and a key evicted by a lost write.
func tolerateLookup(tolerate func(error) error, err error) error {
	if errors.Is(err, pipette.ErrNotFound) {
		return nil
	}
	return tolerate(err)
}
