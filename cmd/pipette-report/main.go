// Command pipette-report renders run-export bundles — the JSON written by
// pipette-sim -export and pipette-bench -export-out — into one
// self-contained HTML run report: latency percentile tables, a per-run
// stage waterfall (where each request's virtual time went, stage by
// stage), tail-exemplar waterfalls with per-resource blame, time × latency
// heatmaps, and per-resource occupancy heatmaps (NAND channels and dies,
// the PCIe DMA link, the NVMe ring).
//
// With -diff it compares two runs instead of rendering one: either two
// run exports or two bench suite summaries (BENCH_<rev>.json). Every
// metric's delta is printed as a table on stdout; rows beyond the
// tolerance band are flagged and make the command exit 1, so the diff
// doubles as a gate. A file diffed against itself reports zero changes
// and exits 0.
//
// The output is fully deterministic: it embeds no wall-clock content and
// formats every number with fixed precision, so identical runs produce
// byte-identical HTML — reports can be diffed across commits and archived
// as CI artifacts.
//
// Usage:
//
//	pipette-report -o report.html run.json
//	pipette-report -o report.html -title "nightly quick run" phases.json sim.json
//	pipette-report -o - run.json > report.html
//	pipette-report -diff old.json new.json
//	pipette-report -diff -tol 0.05 -o diff.html BENCH_baseline.json BENCH_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pipette/internal/bench"
	"pipette/internal/buildinfo"
	"pipette/internal/report"
)

func main() {
	var (
		out     = flag.String("o", "report.html", "output HTML file; '-' for stdout")
		title   = flag.String("title", "Pipette run report", "report title")
		diff    = flag.Bool("diff", false, "compare two exports or bench summaries: -diff old.json new.json")
		tol     = flag.Float64("tol", 0.10, "relative tolerance band for -diff highlighting")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "pipette-report")
		return
	}
	if *diff {
		htmlOut := ""
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "o" {
				htmlOut = *out
			}
		})
		runDiff(flag.Args(), *tol, htmlOut, *title)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pipette-report: no export files given (write them with pipette-sim -export or pipette-bench -export-out)")
		os.Exit(2)
	}

	exports := make([]*report.Export, 0, flag.NArg())
	for _, path := range flag.Args() {
		e, err := report.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(1)
		}
		exports = append(exports, e)
	}

	if *out == "-" {
		if err := report.WriteHTML(os.Stdout, *title, exports); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(1)
	}
	if err := report.WriteHTML(f, *title, exports); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(1)
	}
	runs := 0
	for _, e := range exports {
		runs += len(e.Runs)
	}
	fmt.Printf("report written to %s (%d runs)\n", *out, runs)
}

// fileKind sniffs whether path holds a bench suite summary ("cells") or a
// run export ("runs") without committing to either schema.
func fileKind(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	if _, ok := probe["cells"]; ok {
		return "summary", nil
	}
	if _, ok := probe["runs"]; ok {
		return "export", nil
	}
	return "", fmt.Errorf("%s: neither a bench summary (no \"cells\") nor a run export (no \"runs\")", path)
}

// runDiff compares two files of the same kind and exits: 0 when every
// metric stays inside the tolerance band, 1 when something exceeds it,
// 2 on usage or read errors.
func runDiff(args []string, tol float64, out, title string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "pipette-report: -diff needs exactly two files: old.json new.json")
		os.Exit(2)
	}
	oldPath, newPath := args[0], args[1]
	oldKind, err := fileKind(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(2)
	}
	newKind, err := fileKind(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(2)
	}
	if oldKind != newKind {
		fmt.Fprintf(os.Stderr, "pipette-report: cannot diff a %s against a %s\n", oldKind, newKind)
		os.Exit(2)
	}

	var d *report.Diff
	if oldKind == "summary" {
		oldSum, err := bench.ReadSummary(oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
		newSum, err := bench.ReadSummary(newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
		d, err = bench.DiffSummaries(newSum, oldSum, bench.Uniform(tol))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
	} else {
		oldExp, err := report.ReadFile(oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
		newExp, err := report.ReadFile(newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
		d = report.DiffExports(oldExp, newExp, tol)
	}

	if err := d.WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(2)
	}
	if out != "" && out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
		if err := d.WriteHTML(f, title); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(2)
		}
	}
	if d.Exceeded() > 0 {
		os.Exit(1)
	}
}
