// Command pipette-report renders run-export bundles — the JSON written by
// pipette-sim -export and pipette-bench -export-out — into one
// self-contained HTML run report: latency percentile tables, a per-run
// stage waterfall (where each request's virtual time went, stage by
// stage), and per-resource occupancy heatmaps (NAND channels and dies,
// the PCIe DMA link, the NVMe ring).
//
// The output is fully deterministic: it embeds no wall-clock content and
// formats every number with fixed precision, so identical runs produce
// byte-identical HTML — reports can be diffed across commits and archived
// as CI artifacts.
//
// Usage:
//
//	pipette-report -o report.html run.json
//	pipette-report -o report.html -title "nightly quick run" phases.json sim.json
//	pipette-report -o - run.json > report.html
package main

import (
	"flag"
	"fmt"
	"os"

	"pipette/internal/buildinfo"
	"pipette/internal/report"
)

func main() {
	var (
		out     = flag.String("o", "report.html", "output HTML file; '-' for stdout")
		title   = flag.String("title", "Pipette run report", "report title")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "pipette-report")
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pipette-report: no export files given (write them with pipette-sim -export or pipette-bench -export-out)")
		os.Exit(2)
	}

	exports := make([]*report.Export, 0, flag.NArg())
	for _, path := range flag.Args() {
		e, err := report.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(1)
		}
		exports = append(exports, e)
	}

	if *out == "-" {
		if err := report.WriteHTML(os.Stdout, *title, exports); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(1)
	}
	if err := report.WriteHTML(f, *title, exports); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-report: %v\n", err)
		os.Exit(1)
	}
	runs := 0
	for _, e := range exports {
		runs += len(e.Runs)
	}
	fmt.Printf("report written to %s (%d runs)\n", *out, runs)
}
