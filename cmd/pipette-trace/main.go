// Command pipette-trace generates, inspects, and replays workload traces.
//
// Usage:
//
//	pipette-trace gen -workload mixD -dist zipfian -n 100000 -o trace.bin
//	pipette-trace info trace.bin
//	pipette-trace replay -file-mb 128 trace.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"pipette"
	"pipette/internal/buildinfo"
	"pipette/internal/trace"
	"pipette/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "version", "-version", "--version":
		buildinfo.Fprint(os.Stdout, "pipette-trace")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pipette-trace gen|info|replay|version [flags] [file]")
	os.Exit(2)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wl := fs.String("workload", "mixE", "mixA..mixE, recommender, socialgraph, searchengine")
	dist := fs.String("dist", "uniform", "uniform or zipfian")
	n := fs.Int("n", 100_000, "requests to generate")
	fileMB := fs.Int64("file-mb", 128, "dataset size (MiB)")
	seed := fs.Uint64("seed", 42, "seed")
	out := fs.String("o", "trace.bin", "output file")
	_ = fs.Parse(args)

	gen, err := makeGenerator(*wl, *dist, *fileMB<<20, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, gen, *n); err != nil {
		return err
	}
	fmt.Printf("wrote %d requests of %s to %s (dataset %.1f MiB)\n",
		*n, gen.Name(), *out, float64(gen.FileSize())/(1<<20))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs a trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	reqs, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(reqs)
	fmt.Printf("%s: %d requests, %.1f MiB requested, extent %.1f MiB, %d distinct sizes\n",
		fs.Arg(0), s.Requests, float64(s.Bytes)/(1<<20), float64(s.Extent)/(1<<20), s.Distinct)
	fmt.Printf("%-6s %10s %12s %10s %10s %10s\n", "op", "count", "bytes", "size p50", "size p99", "size max")
	for _, op := range s.Ops {
		fmt.Printf("%-6s %10d %12d %10d %10d %10d\n", op.Op, op.Count, op.Bytes, op.P50, op.P99, op.Max)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	fileMB := fs.Int64("file-mb", 0, "dataset size (MiB); 0 = trace extent")
	pcMB := fs.Int64("pagecache", 40, "page cache budget (MiB)")
	fgMB := fs.Int("finecache", 8, "fine cache arena (MiB)")
	fine := fs.Bool("fine", true, "enable the fine-grained read cache")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs a trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	reqs, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		return err
	}
	fileSize := *fileMB << 20
	if fileSize == 0 {
		for _, r := range reqs {
			if end := r.Off + int64(r.Size); end > fileSize {
				fileSize = end
			}
		}
	}
	rep, err := trace.NewReplayer(fs.Arg(0), fileSize, reqs)
	if err != nil {
		return err
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:    fileSize + fileSize/2 + (64 << 20),
		PageCacheBytes:   *pcMB << 20,
		FineCacheBytes:   *fgMB << 20,
		DisableFineCache: !*fine,
	})
	if err != nil {
		return err
	}
	if err := sys.CreateFile("trace.dat", fileSize, true); err != nil {
		return err
	}
	file, err := sys.Open("trace.dat", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<16)
	for i := 0; i < rep.Len(); i++ {
		r := rep.Next()
		if r.Size > len(buf) {
			buf = make([]byte, r.Size)
		}
		if r.Write {
			_, err = file.WriteAt(buf[:r.Size], r.Off)
		} else {
			_, err = file.ReadAt(buf[:r.Size], r.Off)
		}
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
	}
	fmt.Println(sys.Report())
	return nil
}

func makeGenerator(wl, dist string, fileSize int64, seed uint64) (workload.Generator, error) {
	d := workload.Uniform
	if dist == "zipfian" {
		d = workload.Zipfian
	} else if dist != "uniform" {
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	switch wl {
	case "mixA", "mixB", "mixC", "mixD", "mixE":
		idx := int(wl[3] - 'A')
		return workload.NewSynthetic(workload.Mixes(fileSize, 4096, d, seed)[idx])
	case "recommender":
		cfg := workload.DefaultRecommenderConfig()
		cfg.TableBytes = fileSize
		cfg.Seed = seed
		return workload.NewRecommender(cfg)
	case "socialgraph":
		cfg := workload.DefaultSocialGraphConfig()
		cfg.Nodes = uint64(fileSize) / 120
		cfg.Seed = seed
		return workload.NewSocialGraph(cfg)
	case "searchengine":
		cfg := workload.DefaultSearchEngineConfig()
		cfg.Terms = uint64(fileSize) / 600 // entry + mean posting footprint
		cfg.Seed = seed
		return workload.NewSearchEngine(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}
