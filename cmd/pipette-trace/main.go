// Command pipette-trace generates, inspects, and replays workload traces.
//
// Usage:
//
//	pipette-trace gen -workload mixD -dist zipfian -n 100000 -o trace.bin
//	pipette-trace info trace.bin
//	pipette-trace replay -file-mb 128 trace.bin
//	pipette-trace tail export.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pipette"
	"pipette/internal/buildinfo"
	"pipette/internal/report"
	"pipette/internal/trace"
	"pipette/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "tail":
		err = cmdTail(os.Args[2:])
	case "version", "-version", "--version":
		buildinfo.Fprint(os.Stdout, "pipette-trace")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pipette-trace gen|info|replay|tail|version [flags] [file]")
	os.Exit(2)
}

// cmdTail prints the tail exemplars captured in a run-export bundle: per
// run, the blame composition over the kept slow set and an ASCII
// waterfall of each top-K exemplar's critical-path spans.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	width := fs.Int("width", 60, "waterfall bar width in characters")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("tail needs a run-export JSON file (pipette-bench -export-out)")
	}
	exp, err := report.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	shown := 0
	for _, r := range exp.Runs {
		if len(r.Exemplars) == 0 && len(r.TailBlame) == 0 {
			continue
		}
		shown++
		fmt.Printf("== %s ==\n", r.Name)
		if len(r.TailBlame) > 0 {
			fmt.Printf("tail blame (slowest %d of %d requests):\n", r.TailKept, r.Requests)
			fmt.Printf("  %-10s %-14s %12s %7s\n", "stage", "resource", "total ms", "share")
			for _, b := range r.TailBlame {
				res := b.Res
				if res == "" {
					res = "-"
				}
				fmt.Printf("  %-10s %-14s %12.3f %6.1f%%\n", b.Stage, res, float64(b.TotalNs)/1e6, b.SharePct)
			}
		}
		for i, ex := range r.Exemplars {
			fmt.Printf("#%d seq=%d start=%.3fms latency=%.2fus\n",
				i+1, ex.Seq, float64(ex.StartNs)/1e6, ex.LatencyUs)
			total := ex.LatencyUs * 1e3 // ns
			if total <= 0 {
				continue
			}
			for _, sp := range ex.Spans {
				dur := sp.EndNs - sp.StartNs
				n := int(float64(*width) * float64(dur) / total)
				if n < 1 {
					n = 1
				}
				off := int(float64(*width) * float64(sp.StartNs-ex.StartNs) / total)
				if off+n > *width {
					off = *width - n
					if off < 0 {
						off = 0
					}
				}
				label := sp.Stage
				if sp.Res != "" {
					label += "@" + sp.Res
				}
				fmt.Printf("  %s%s%s %-26s %9.2fus\n",
					strings.Repeat(" ", off), strings.Repeat("#", n),
					strings.Repeat(" ", *width-off-n), label, float64(dur)/1e3)
			}
		}
		fmt.Println()
	}
	if shown == 0 {
		fmt.Println("no tail exemplars in export (runs predate tail capture, or none were collected)")
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	wl := fs.String("workload", "mixE", "mixA..mixE, recommender, socialgraph, searchengine")
	dist := fs.String("dist", "uniform", "uniform or zipfian")
	n := fs.Int("n", 100_000, "requests to generate")
	fileMB := fs.Int64("file-mb", 128, "dataset size (MiB)")
	seed := fs.Uint64("seed", 42, "seed")
	out := fs.String("o", "trace.bin", "output file")
	_ = fs.Parse(args)

	gen, err := makeGenerator(*wl, *dist, *fileMB<<20, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, gen, *n); err != nil {
		return err
	}
	fmt.Printf("wrote %d requests of %s to %s (dataset %.1f MiB)\n",
		*n, gen.Name(), *out, float64(gen.FileSize())/(1<<20))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs a trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	reqs, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(reqs)
	fmt.Printf("%s: %d requests, %.1f MiB requested, extent %.1f MiB, %d distinct sizes\n",
		fs.Arg(0), s.Requests, float64(s.Bytes)/(1<<20), float64(s.Extent)/(1<<20), s.Distinct)
	fmt.Printf("%-6s %10s %12s %10s %10s %10s\n", "op", "count", "bytes", "size p50", "size p99", "size max")
	for _, op := range s.Ops {
		fmt.Printf("%-6s %10d %12d %10d %10d %10d\n", op.Op, op.Count, op.Bytes, op.P50, op.P99, op.Max)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	fileMB := fs.Int64("file-mb", 0, "dataset size (MiB); 0 = trace extent")
	pcMB := fs.Int64("pagecache", 40, "page cache budget (MiB)")
	fgMB := fs.Int("finecache", 8, "fine cache arena (MiB)")
	fine := fs.Bool("fine", true, "enable the fine-grained read cache")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs a trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	reqs, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		return err
	}
	fileSize := *fileMB << 20
	if fileSize == 0 {
		for _, r := range reqs {
			if end := r.Off + int64(r.Size); end > fileSize {
				fileSize = end
			}
		}
	}
	rep, err := trace.NewReplayer(fs.Arg(0), fileSize, reqs)
	if err != nil {
		return err
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:    fileSize + fileSize/2 + (64 << 20),
		PageCacheBytes:   *pcMB << 20,
		FineCacheBytes:   *fgMB << 20,
		DisableFineCache: !*fine,
	})
	if err != nil {
		return err
	}
	if err := sys.CreateFile("trace.dat", fileSize, true); err != nil {
		return err
	}
	file, err := sys.Open("trace.dat", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<16)
	for i := 0; i < rep.Len(); i++ {
		r := rep.Next()
		if r.Size > len(buf) {
			buf = make([]byte, r.Size)
		}
		if r.Write {
			_, err = file.WriteAt(buf[:r.Size], r.Off)
		} else {
			_, err = file.ReadAt(buf[:r.Size], r.Off)
		}
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
	}
	fmt.Println(sys.Report())
	return nil
}

func makeGenerator(wl, dist string, fileSize int64, seed uint64) (workload.Generator, error) {
	d := workload.Uniform
	if dist == "zipfian" {
		d = workload.Zipfian
	} else if dist != "uniform" {
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	switch wl {
	case "mixA", "mixB", "mixC", "mixD", "mixE":
		idx := int(wl[3] - 'A')
		return workload.NewSynthetic(workload.Mixes(fileSize, 4096, d, seed)[idx])
	case "recommender":
		cfg := workload.DefaultRecommenderConfig()
		cfg.TableBytes = fileSize
		cfg.Seed = seed
		return workload.NewRecommender(cfg)
	case "socialgraph":
		cfg := workload.DefaultSocialGraphConfig()
		cfg.Nodes = uint64(fileSize) / 120
		cfg.Seed = seed
		return workload.NewSocialGraph(cfg)
	case "searchengine":
		cfg := workload.DefaultSearchEngineConfig()
		cfg.Terms = uint64(fileSize) / 600 // entry + mean posting footprint
		cfg.Seed = seed
		return workload.NewSearchEngine(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}
