// Command pipette-bench regenerates the tables and figures of the paper's
// evaluation (DAC'22, §4) from the simulator, plus ablation sweeps.
//
// Usage:
//
//	pipette-bench -list
//	pipette-bench -exp all -scale quick
//	pipette-bench -exp fig6               # or table2, fig8, apps, ...
//	pipette-bench -exp apps -scale full   # paper-scale (slow)
//	pipette-bench -exp phases -trace-out trace.json -stats-out stats.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pipette/internal/bench"
	"pipette/internal/sim"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment id or paper artifact (fig6, table2, ... ; 'all')")
		scaleName = flag.String("scale", "quick", "experiment scale: tiny, quick, or full")
		list      = flag.Bool("list", false, "list experiments and exit")
		traceOut  = flag.String("trace-out", "", "phases experiment: write Chrome trace-event JSON (open in Perfetto)")
		statsOut  = flag.String("stats-out", "", "phases experiment: write sampled time-series CSV")
		statsInt  = flag.Duration("stats-interval", time.Millisecond, "virtual-time sampling interval for -stats-out")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (select by id or by any artifact):")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-18s %-34s %s\n", e.ID, strings.Join(e.Artifacts, ","), e.Title)
		}
		return
	}

	var scale bench.Scale
	switch *scaleName {
	case "tiny":
		scale = bench.TinyScale()
	case "quick":
		scale = bench.QuickScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "pipette-bench: unknown scale %q (tiny|quick|full)\n", *scaleName)
		os.Exit(2)
	}

	topts := bench.TelemetryOpts{
		TraceOut:      *traceOut,
		StatsOut:      *statsOut,
		StatsInterval: sim.Time((*statsInt).Nanoseconds()),
	}

	start := time.Now()
	var err error
	if *expName == "all" {
		err = bench.RunAll(os.Stdout, scale)
	} else {
		var exp bench.Experiment
		exp, err = bench.Find(*expName)
		if err == nil {
			fmt.Printf("### %s\n\n", exp.Title)
			if exp.ID == "phases" {
				// The phases experiment honours the export flags.
				err = bench.WritePhaseBreakdown(os.Stdout, scale, topts)
			} else {
				err = exp.Run(os.Stdout, scale)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("(wall time %.1fs, scale %s)\n", time.Since(start).Seconds(), scale.Name)
}
