// Command pipette-bench regenerates the tables and figures of the paper's
// evaluation (DAC'22, §4) from the simulator, plus ablation sweeps.
//
// Usage:
//
//	pipette-bench -list
//	pipette-bench -exp all -scale quick
//	pipette-bench -exp fig6               # or table2, fig8, apps, ...
//	pipette-bench -exp phases,kv,faults   # comma-separated selection
//	pipette-bench -exp qdepth             # open-loop saturation sweep
//	pipette-bench -exp qdepth -export-out qd.json  # curves for pipette-report
//	pipette-bench -exp cluster            # sharded serving tier sweep
//	pipette-bench -exp cluster -shards 8 -replicas 1,3 -tenants 4 -skew 0,0.99
//	pipette-bench -exp apps -scale full   # paper-scale (slow)
//	pipette-bench -exp all -j 8           # parallel cells, identical output
//	pipette-bench -exp all -json BENCH_quick.json
//	pipette-bench -exp all -listen :9100  # live /metrics /healthz /progress
//	pipette-bench -exp phases,kv,faults -scale tiny -baseline BENCH_baseline.json -compare
//	pipette-bench -exp fig6 -cpuprofile cpu.out
//	pipette-bench -exp faults -flight-dump flight.json
//	pipette-bench -exp phases -trace-out trace.json -stats-out stats.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"pipette/internal/bench"
	"pipette/internal/buildinfo"
	"pipette/internal/fault"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment ids or paper artifacts, comma-separated (fig6, table2, ... ; 'all')")
		scaleName = flag.String("scale", "quick", "experiment scale: tiny, quick, or full")
		workers   = flag.Int("j", 0, "worker goroutines for the experiment cells (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list experiments and exit")
		version   = flag.Bool("version", false, "print build identity and exit")
		listen    = flag.String("listen", "", "serve live /metrics, /healthz, and /progress on this address (e.g. :9100)")
		jsonOut   = flag.String("json", "", "write the machine-readable perf summary (regression-gate format) to this file; '-' for stdout")
		baseline  = flag.String("baseline", "", "compare the run's perf summary against this committed baseline JSON")
		compare   = flag.Bool("compare", false, "with -baseline: exit non-zero when any cell regresses past tolerance")
		tolerance = flag.Float64("tolerance", 0, "override every tolerance band with this relative fraction (0 = defaults)")
		rev       = flag.String("rev", "", "revision stamped into the perf summary (default: build version)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		traceOut  = flag.String("trace-out", "", "phases experiment: write Chrome trace-event JSON (open in Perfetto)")
		statsOut  = flag.String("stats-out", "", "phases experiment: write sampled time-series CSV")
		exportOut = flag.String("export-out", "", "phases experiment: write the run-export bundle JSON (pipette-report input)")
		statsInt  = flag.Duration("stats-interval", time.Millisecond, "virtual-time sampling interval for -stats-out")
		faultProf = flag.String("fault-profile", "", "arm fault injection on every engine: site:spec rules, e.g. 'nand.read:rber*20,hmb.ring:0.01' (empty = off)")
		flightOut = flag.String("flight-dump", "", "arm a shared flight recorder on every engine; a panicking cell or fatal error dumps the recent-event ring to this file as JSON")
		faultSeed = flag.Uint64("fault-seed", 0x5eed, "seed for the fault injector's per-site decision streams")
		shards    = flag.Int("shards", 0, "cluster experiment: shard count (0 = scale default)")
		replicas  = flag.String("replicas", "", "cluster experiment: replication factors to sweep, comma-separated (empty = scale default)")
		tenants   = flag.Int("tenants", 0, "cluster experiment: tenant count (0 = scale default)")
		skew      = flag.String("skew", "", "cluster experiment: tenant Zipf thetas to sweep, comma-separated, 0 = uniform (empty = scale default)")
	)
	flag.Parse()

	if *version {
		buildinfo.Fprint(os.Stdout, "pipette-bench")
		return
	}
	if *list {
		fmt.Println("experiments (select by id or by any artifact):")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-18s %-34s %s\n", e.ID, strings.Join(e.Artifacts, ","), e.Title)
		}
		return
	}

	var scale bench.Scale
	switch *scaleName {
	case "tiny":
		scale = bench.TinyScale()
	case "quick":
		scale = bench.QuickScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "pipette-bench: unknown scale %q (tiny|quick|full)\n", *scaleName)
		os.Exit(2)
	}
	if prof, err := fault.ParseProfile(*faultProf); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
		os.Exit(2)
	} else {
		scale.Fault = prof
		scale.FaultSeed = *faultSeed
	}
	if *shards > 0 {
		scale.ClusterShards = *shards
	}
	if *tenants > 0 {
		scale.ClusterTenants = *tenants
	}
	if *replicas != "" {
		rs, err := parseIntList(*replicas)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: -replicas: %v\n", err)
			os.Exit(2)
		}
		scale.ClusterReplicas = rs
	}
	if *skew != "" {
		sk, err := parseFloatList(*skew)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: -skew: %v\n", err)
			os.Exit(2)
		}
		scale.ClusterSkews = sk
	}
	if *compare && *baseline == "" {
		fmt.Fprintln(os.Stderr, "pipette-bench: -compare needs -baseline")
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// -flight-dump arms one shared recorder across every engine the harness
	// builds. The file is created eagerly so a missing directory fails
	// before hours of cells run, and the dump closure is once-only — under
	// -j several cells can fail together, but only the first writes.
	var dumpFlight func(reason string)
	if *flightOut != "" {
		flight := telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents)
		flightFile, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		defer flightFile.Close()
		var once sync.Once
		dumpFlight = func(reason string) {
			once.Do(func() {
				if derr := flight.Dump(flightFile, reason, 0); derr != nil {
					fmt.Fprintf(os.Stderr, "pipette-bench: flight dump: %v\n", derr)
					return
				}
				fmt.Fprintf(os.Stderr, "pipette-bench: flight recorder dumped to %s (%s)\n", *flightOut, reason)
			})
		}
		bench.ArmFlight(flight, dumpFlight)
		defer bench.ArmFlight(nil, nil)
	}

	topts := bench.TelemetryOpts{
		TraceOut:      *traceOut,
		StatsOut:      *statsOut,
		StatsInterval: sim.Time((*statsInt).Nanoseconds()),
		ExportOut:     *exportOut,
	}
	pool := bench.NewPool(*workers)

	// -listen attaches the live registry before any cell runs. Finished
	// cells fold their counters in atomically, so the rendered tables on
	// stdout are byte-identical with or without a scraper; the server's own
	// chatter goes to stderr.
	if *listen != "" {
		reg := telemetry.NewRegistry(telemetry.L("job", "pipette-bench"))
		buildinfo.Register(reg, "pipette-bench")
		live := bench.NewLive(reg)
		pool.SetLive(live)
		srv, err := telemetry.Serve(*listen, reg, live.Progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pipette-bench: serving /metrics /healthz /progress on http://%s\n", srv.Addr())
	}

	start := time.Now()
	if err := runExperiments(*expName, scale, topts, pool); err != nil {
		if dumpFlight != nil {
			dumpFlight(fmt.Sprintf("fatal: %v", err))
		}
		fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()
	fmt.Printf("(wall time %.1fs, scale %s, -j %d)\n", wall, scale.Name, pool.Workers())

	revision := *rev
	if revision == "" {
		revision = buildinfo.Version
	}
	summary := &bench.Summary{
		Rev:         revision,
		Experiment:  *expName,
		Scale:       scale.Name,
		Workers:     pool.Workers(),
		WallSeconds: wall,
		Cells:       pool.Perf(),
	}

	jsonPath := *jsonOut
	if jsonPath == "" && *compare {
		jsonPath = fmt.Sprintf("BENCH_%s.json", revision)
	}
	if jsonPath != "" {
		if err := summary.WriteFile(jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		if jsonPath != "-" {
			fmt.Printf("perf summary written to %s (%d cells)\n", jsonPath, len(summary.Cells))
		}
	}

	if *baseline != "" {
		base, err := bench.ReadSummary(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		tol := bench.DefaultTolerance()
		if *tolerance > 0 {
			tol = bench.Uniform(*tolerance)
		}
		regs, err := bench.Compare(summary, base, tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.GateReport(summary, base, regs))
		if *compare && len(regs) > 0 {
			os.Exit(1)
		}
	}
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// runExperiments executes a comma-separated experiment selection against
// one shared pool, so the perf summary covers every cell.
func runExperiments(sel string, scale bench.Scale, topts bench.TelemetryOpts, pool *bench.Pool) error {
	names := strings.Split(sel, ",")
	for i, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if name == "all" {
			if err := bench.RunAll(os.Stdout, scale, pool); err != nil {
				return err
			}
			continue
		}
		exp, err := bench.Find(name)
		if err != nil {
			return err
		}
		fmt.Printf("### %s\n\n", exp.Title)
		if exp.ID == "phases" {
			// The phases experiment honours the export flags.
			err = bench.WritePhaseBreakdown(os.Stdout, scale, topts, pool)
		} else if exp.ID == "qdepth" {
			// The qdepth experiment honours -export-out.
			err = bench.WriteQDepth(os.Stdout, scale, topts, pool)
		} else if exp.ID == "cluster" {
			// The cluster experiment honours -export-out.
			err = bench.WriteCluster(os.Stdout, scale, topts, pool)
		} else if exp.ID == "kv" {
			// The kv matrix honours -export-out.
			err = bench.WriteKV(os.Stdout, scale, topts, pool)
		} else {
			err = exp.Run(os.Stdout, scale, pool)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
