// Command pipette-bench regenerates the tables and figures of the paper's
// evaluation (DAC'22, §4) from the simulator, plus ablation sweeps.
//
// Usage:
//
//	pipette-bench -list
//	pipette-bench -exp all -scale quick
//	pipette-bench -exp fig6               # or table2, fig8, apps, ...
//	pipette-bench -exp apps -scale full   # paper-scale (slow)
//	pipette-bench -exp all -j 8           # parallel cells, identical output
//	pipette-bench -exp all -json BENCH_quick.json
//	pipette-bench -exp fig6 -cpuprofile cpu.out
//	pipette-bench -exp phases -trace-out trace.json -stats-out stats.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"pipette/internal/bench"
	"pipette/internal/fault"
	"pipette/internal/sim"
)

// perfSummary is the machine-readable perf record -json emits, so the
// suite's wall-clock trajectory can be tracked across commits.
type perfSummary struct {
	Experiment  string           `json:"experiment"`
	Scale       string           `json:"scale"`
	Workers     int              `json:"workers"`
	WallSeconds float64          `json:"wall_seconds"`
	Cells       []bench.CellPerf `json:"cells"`
}

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment id or paper artifact (fig6, table2, ... ; 'all')")
		scaleName = flag.String("scale", "quick", "experiment scale: tiny, quick, or full")
		workers   = flag.Int("j", 0, "worker goroutines for the experiment cells (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonOut   = flag.String("json", "", "write a machine-readable perf summary (suite wall-clock, per-cell sim throughput) to this file; '-' for stdout")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		traceOut  = flag.String("trace-out", "", "phases experiment: write Chrome trace-event JSON (open in Perfetto)")
		statsOut  = flag.String("stats-out", "", "phases experiment: write sampled time-series CSV")
		statsInt  = flag.Duration("stats-interval", time.Millisecond, "virtual-time sampling interval for -stats-out")
		faultProf = flag.String("fault-profile", "", "arm fault injection on every engine: site:spec rules, e.g. 'nand.read:rber*20,hmb.ring:0.01' (empty = off)")
		faultSeed = flag.Uint64("fault-seed", 0x5eed, "seed for the fault injector's per-site decision streams")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (select by id or by any artifact):")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-18s %-34s %s\n", e.ID, strings.Join(e.Artifacts, ","), e.Title)
		}
		return
	}

	var scale bench.Scale
	switch *scaleName {
	case "tiny":
		scale = bench.TinyScale()
	case "quick":
		scale = bench.QuickScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "pipette-bench: unknown scale %q (tiny|quick|full)\n", *scaleName)
		os.Exit(2)
	}
	if prof, err := fault.ParseProfile(*faultProf); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
		os.Exit(2)
	} else {
		scale.Fault = prof
		scale.FaultSeed = *faultSeed
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	topts := bench.TelemetryOpts{
		TraceOut:      *traceOut,
		StatsOut:      *statsOut,
		StatsInterval: sim.Time((*statsInt).Nanoseconds()),
	}
	pool := bench.NewPool(*workers)

	start := time.Now()
	var err error
	if *expName == "all" {
		err = bench.RunAll(os.Stdout, scale, pool)
	} else {
		var exp bench.Experiment
		exp, err = bench.Find(*expName)
		if err == nil {
			fmt.Printf("### %s\n\n", exp.Title)
			if exp.ID == "phases" {
				// The phases experiment honours the export flags.
				err = bench.WritePhaseBreakdown(os.Stdout, scale, topts, pool)
			} else {
				err = exp.Run(os.Stdout, scale, pool)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()
	fmt.Printf("(wall time %.1fs, scale %s, -j %d)\n", wall, scale.Name, pool.Workers())

	if *jsonOut != "" {
		summary := perfSummary{
			Experiment:  *expName,
			Scale:       scale.Name,
			Workers:     pool.Workers(),
			WallSeconds: wall,
			Cells:       pool.Perf(),
		}
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-bench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut != "-" {
			fmt.Printf("perf summary written to %s (%d cells)\n", *jsonOut, len(summary.Cells))
		}
	}
}
