// Command pipette-sim runs configurable simulations: it builds one host+SSD
// system per workload with Pipette installed, replays the workload, and
// dumps the full statistics report — a scriptable counterpart to
// pipette-bench's fixed experiment grid. -workload accepts a
// comma-separated list; the runs are independent simulations, so -j
// replays them on parallel workers while the reports print in the order
// given, byte-identical to a serial run.
//
// Usage:
//
//	pipette-sim -workload mixE -dist zipfian -requests 100000
//	pipette-sim -workload mixA,mixC,mixE -j 3
//	pipette-sim -workload recommender -requests 200000 -fine=false
//	pipette-sim -workload socialgraph -pagecache 64 -finecache 8
//	pipette-sim -trace-out trace.json -stats-out stats.csv
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pipette"
	"pipette/internal/bench"
	"pipette/internal/fault"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// telemetryOpts are the observability exports of one run.
type telemetryOpts struct {
	traceOut      string
	statsOut      string
	statsInterval sim.Time
}

func main() {
	var (
		wl       = flag.String("workload", "mixE", "comma-separated list of mixA..mixE, recommender, socialgraph, or searchengine")
		dist     = flag.String("dist", "uniform", "synthetic request distribution: uniform or zipfian")
		requests = flag.Int("requests", 100_000, "requests to replay")
		fileMB   = flag.Int64("file-mb", 128, "synthetic dataset size (MiB)")
		pcMB     = flag.Int64("pagecache", 40, "page cache budget (MiB)")
		fgMB     = flag.Int("finecache", 8, "fine-grained read cache arena (MiB)")
		fine     = flag.Bool("fine", true, "enable the fine-grained read cache")
		seed     = flag.Uint64("seed", 42, "workload seed")
		workers  = flag.Int("j", 0, "worker goroutines when replaying several workloads (0 = GOMAXPROCS)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON (open in Perfetto)")
		statsOut = flag.String("stats-out", "", "write sampled time-series CSV")
		statsInt  = flag.Duration("stats-interval", time.Millisecond, "virtual-time sampling interval for -stats-out")
		faultProf = flag.String("fault-profile", "", "arm fault injection: site:spec rules, e.g. 'nand.read:rber*20,hmb.ring:0.01' (empty = off)")
		faultSeed = flag.Uint64("fault-seed", 0x5eed, "seed for the fault injector's per-site decision streams")
	)
	flag.Parse()
	if _, err := fault.ParseProfile(*faultProf); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
		os.Exit(2)
	}

	topts := telemetryOpts{
		traceOut:      *traceOut,
		statsOut:      *statsOut,
		statsInterval: sim.Time((*statsInt).Nanoseconds()),
	}
	wls := strings.Split(*wl, ",")
	if len(wls) > 1 && (topts.traceOut != "" || topts.statsOut != "") {
		fmt.Fprintln(os.Stderr, "pipette-sim: -trace-out/-stats-out need a single -workload")
		os.Exit(2)
	}

	if len(wls) == 1 {
		if err := run(os.Stdout, wls[0], *dist, *requests, *fileMB, *pcMB, *fgMB, *fine, *seed, *faultProf, *faultSeed, topts); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Several workloads: each is a fully private simulation, so replay them
	// as pool cells rendering into per-run buffers, printed in input order.
	bufs := make([]bytes.Buffer, len(wls))
	cells := make([]bench.Cell, 0, len(wls))
	for i, name := range wls {
		i, name := i, strings.TrimSpace(name)
		cells = append(cells, bench.Cell{
			Label: "sim/" + name,
			Run: func() (*bench.Result, error) {
				return nil, run(&bufs[i], name, *dist, *requests, *fileMB, *pcMB, *fgMB, *fine, *seed, *faultProf, *faultSeed, telemetryOpts{})
			},
		})
	}
	pool := bench.NewPool(*workers)
	err := pool.RunCells(cells)
	for i := range bufs {
		if i > 0 {
			fmt.Println()
		}
		os.Stdout.Write(bufs[i].Bytes())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, wl, dist string, requests int, fileMB, pcMB int64, fgMB int, fine bool, seed uint64, faultProf string, faultSeed uint64, topts telemetryOpts) error {
	gen, err := makeGenerator(wl, dist, fileMB<<20, seed)
	if err != nil {
		return err
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:    gen.FileSize() + gen.FileSize()/2 + (64 << 20),
		PageCacheBytes:   pcMB << 20,
		FineCacheBytes:   fgMB << 20,
		DisableFineCache: !fine,
		FaultProfile:     faultProf,
		FaultSeed:        faultSeed,
	})
	if err != nil {
		return err
	}
	if err := sys.CreateFile("workload.dat", gen.FileSize(), true); err != nil {
		return err
	}
	f, err := sys.Open("workload.dat", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		return err
	}

	// Open export files before the replay so a bad path fails fast, not
	// after minutes of simulation.
	var rec *telemetry.Recorder
	var traceFile *os.File
	if topts.traceOut != "" {
		if traceFile, err = os.Create(topts.traceOut); err != nil {
			return err
		}
		defer traceFile.Close()
		rec = telemetry.NewRecorder()
		sys.SetTracer(rec)
	}
	var sampler *telemetry.Sampler
	var statsFile *os.File
	if topts.statsOut != "" {
		sampler, err = telemetry.NewSampler(topts.statsInterval, sys.Probes())
		if err != nil {
			return err
		}
		if statsFile, err = os.Create(topts.statsOut); err != nil {
			return err
		}
		defer statsFile.Close()
	}

	fmt.Fprintf(w, "workload %s over %.1f MiB, %d requests (fine cache: %v)\n\n",
		gen.Name(), float64(gen.FileSize())/(1<<20), requests, fine)

	buf := make([]byte, 64<<10)
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	var lost int
	for i := 0; i < requests; i++ {
		req := gen.Next()
		if req.Size > len(buf) {
			buf = make([]byte, req.Size)
			payload = make([]byte, req.Size)
		}
		if req.Write {
			_, err = f.WriteAt(payload[:req.Size], req.Off)
		} else {
			_, err = f.ReadAt(buf[:req.Size], req.Off)
		}
		if err != nil {
			// Under an armed fault profile uncorrectable media errors are
			// expected outcomes, not harness failures: count and go on.
			if !errors.Is(err, pipette.ErrUncorrectable) {
				return fmt.Errorf("request %d: %w", i, err)
			}
			lost++
		}
		if sampler != nil {
			sampler.Tick(sys.Now())
		}
	}

	rep := sys.Report()
	fmt.Fprintln(w, rep)
	if lost > 0 {
		fmt.Fprintf(w, "\nuncorrectable     %d of %d requests lost to media errors\n", lost, requests)
	}
	fmt.Fprintf(w, "\nthroughput        %.0f ops/s (virtual)\n",
		float64(requests)/rep.Elapsed.Seconds())

	if rec != nil {
		fmt.Fprintf(w, "\nper-phase latency breakdown:\n%s", rec.Breakdown().Render())
		if err := rec.WriteChromeTrace(traceFile); err != nil {
			return err
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s (%d events; open in Perfetto / chrome://tracing)\n",
			topts.traceOut, rec.Events())
	}
	if sampler != nil {
		if err := sampler.WriteCSV(statsFile); err != nil {
			return err
		}
		if err := statsFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "time series written to %s (%d samples, %d series)\n",
			topts.statsOut, sampler.Rows(), len(sampler.Series()))
	}
	return nil
}

func makeGenerator(wl, dist string, fileSize int64, seed uint64) (workload.Generator, error) {
	d := workload.Uniform
	if dist == "zipfian" {
		d = workload.Zipfian
	} else if dist != "uniform" {
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	switch wl {
	case "mixA", "mixB", "mixC", "mixD", "mixE":
		idx := int(wl[3] - 'A')
		return workload.NewSynthetic(workload.Mixes(fileSize, 4096, d, seed)[idx])
	case "recommender":
		cfg := workload.DefaultRecommenderConfig()
		cfg.TableBytes = fileSize
		cfg.Seed = seed
		return workload.NewRecommender(cfg)
	case "socialgraph":
		cfg := workload.DefaultSocialGraphConfig()
		cfg.Nodes = uint64(fileSize) / 120 // ~96 B node + ~2 edges
		cfg.Seed = seed
		return workload.NewSocialGraph(cfg)
	case "searchengine":
		cfg := workload.DefaultSearchEngineConfig()
		cfg.Terms = uint64(fileSize) / 600 // entry + mean posting footprint
		cfg.Seed = seed
		return workload.NewSearchEngine(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}
