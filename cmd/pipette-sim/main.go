// Command pipette-sim runs a single configurable simulation: it builds one
// host+SSD system with Pipette installed, replays a chosen workload, and
// dumps the full statistics report — a scriptable single-run counterpart to
// pipette-bench's fixed experiment grid.
//
// Usage:
//
//	pipette-sim -workload mixE -dist zipfian -requests 100000
//	pipette-sim -workload recommender -requests 200000 -fine=false
//	pipette-sim -workload socialgraph -pagecache 64 -finecache 8
package main

import (
	"flag"
	"fmt"
	"os"

	"pipette"
	"pipette/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "mixE", "mixA..mixE, recommender, socialgraph, or searchengine")
		dist     = flag.String("dist", "uniform", "synthetic request distribution: uniform or zipfian")
		requests = flag.Int("requests", 100_000, "requests to replay")
		fileMB   = flag.Int64("file-mb", 128, "synthetic dataset size (MiB)")
		pcMB     = flag.Int64("pagecache", 40, "page cache budget (MiB)")
		fgMB     = flag.Int("finecache", 8, "fine-grained read cache arena (MiB)")
		fine     = flag.Bool("fine", true, "enable the fine-grained read cache")
		seed     = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	if err := run(*wl, *dist, *requests, *fileMB, *pcMB, *fgMB, *fine, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(wl, dist string, requests int, fileMB, pcMB int64, fgMB int, fine bool, seed uint64) error {
	gen, err := makeGenerator(wl, dist, fileMB<<20, seed)
	if err != nil {
		return err
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:    gen.FileSize() + gen.FileSize()/2 + (64 << 20),
		PageCacheBytes:   pcMB << 20,
		FineCacheBytes:   fgMB << 20,
		DisableFineCache: !fine,
	})
	if err != nil {
		return err
	}
	if err := sys.CreateFile("workload.dat", gen.FileSize(), true); err != nil {
		return err
	}
	f, err := sys.Open("workload.dat", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		return err
	}

	fmt.Printf("workload %s over %.1f MiB, %d requests (fine cache: %v)\n\n",
		gen.Name(), float64(gen.FileSize())/(1<<20), requests, fine)

	buf := make([]byte, 64<<10)
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < requests; i++ {
		req := gen.Next()
		if req.Size > len(buf) {
			buf = make([]byte, req.Size)
			payload = make([]byte, req.Size)
		}
		if req.Write {
			if _, err := f.WriteAt(payload[:req.Size], req.Off); err != nil {
				return fmt.Errorf("request %d: %w", i, err)
			}
		} else if _, err := f.ReadAt(buf[:req.Size], req.Off); err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
	}

	rep := sys.Report()
	fmt.Println(rep)
	fmt.Printf("\nthroughput        %.0f ops/s (virtual)\n",
		float64(requests)/rep.Elapsed.Seconds())
	return nil
}

func makeGenerator(wl, dist string, fileSize int64, seed uint64) (workload.Generator, error) {
	d := workload.Uniform
	if dist == "zipfian" {
		d = workload.Zipfian
	} else if dist != "uniform" {
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	switch wl {
	case "mixA", "mixB", "mixC", "mixD", "mixE":
		idx := int(wl[3] - 'A')
		return workload.NewSynthetic(workload.Mixes(fileSize, 4096, d, seed)[idx])
	case "recommender":
		cfg := workload.DefaultRecommenderConfig()
		cfg.TableBytes = fileSize
		cfg.Seed = seed
		return workload.NewRecommender(cfg)
	case "socialgraph":
		cfg := workload.DefaultSocialGraphConfig()
		cfg.Nodes = uint64(fileSize) / 120 // ~96 B node + ~2 edges
		cfg.Seed = seed
		return workload.NewSocialGraph(cfg)
	case "searchengine":
		cfg := workload.DefaultSearchEngineConfig()
		cfg.Terms = uint64(fileSize) / 600 // entry + mean posting footprint
		cfg.Seed = seed
		return workload.NewSearchEngine(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}
