// Command pipette-sim runs configurable simulations: it builds one host+SSD
// system per workload with Pipette installed, replays the workload, and
// dumps the full statistics report — a scriptable counterpart to
// pipette-bench's fixed experiment grid. -workload accepts a
// comma-separated list; the runs are independent simulations, so -j
// replays them on parallel workers while the reports print in the order
// given, byte-identical to a serial run.
//
// Usage:
//
//	pipette-sim -workload mixE -dist zipfian -requests 100000
//	pipette-sim -workload mixA,mixC,mixE -j 3
//	pipette-sim -workload recommender -requests 200000 -fine=false
//	pipette-sim -workload socialgraph -pagecache 64 -finecache 8
//	pipette-sim -trace-out trace.json -stats-out stats.csv
//	pipette-sim -listen :9101                 # live /metrics while replaying
//	pipette-sim -fault-profile nand.read:rber*50 -flight-dump flight.json
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"pipette"
	"pipette/internal/baseline"
	"pipette/internal/bench"
	"pipette/internal/buildinfo"
	"pipette/internal/fault"
	"pipette/internal/metrics"
	"pipette/internal/report"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// telemetryOpts are the observability attachments of one run: export
// files, the flight-recorder dump path, and the -listen registry.
type telemetryOpts struct {
	traceOut      string
	statsOut      string
	statsInterval sim.Time
	flightOut     string
	reg           *telemetry.Registry // -listen: the system registers its families here
	progress      *simProgress        // -listen: /progress state
}

// simProgress is the /progress document of an interactive run, updated
// with plain atomic stores — the replay itself never observes it.
type simProgress struct {
	total uint64
	done  atomic.Uint64
	lost  atomic.Uint64
}

func (p *simProgress) snapshot() any {
	if p == nil {
		return struct{}{}
	}
	return struct {
		RequestsTotal uint64 `json:"requests_total"`
		RequestsDone  uint64 `json:"requests_done"`
		RequestsLost  uint64 `json:"requests_lost"`
	}{p.total, p.done.Load(), p.lost.Load()}
}

func main() {
	var (
		wl        = flag.String("workload", "mixE", "comma-separated list of mixA..mixE, recommender, socialgraph, or searchengine")
		dist      = flag.String("dist", "uniform", "synthetic request distribution: uniform or zipfian")
		requests  = flag.Int("requests", 100_000, "requests to replay")
		fileMB    = flag.Int64("file-mb", 128, "synthetic dataset size (MiB)")
		pcMB      = flag.Int64("pagecache", 40, "page cache budget (MiB)")
		fgMB      = flag.Int("finecache", 8, "fine-grained read cache arena (MiB)")
		fine      = flag.Bool("fine", true, "enable the fine-grained read cache")
		seed      = flag.Uint64("seed", 42, "workload seed")
		workers   = flag.Int("j", 0, "worker goroutines when replaying several workloads (0 = GOMAXPROCS)")
		version   = flag.Bool("version", false, "print build identity and exit")
		listen    = flag.String("listen", "", "serve live /metrics, /healthz, and /progress on this address (e.g. :9101)")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON (open in Perfetto)")
		statsOut  = flag.String("stats-out", "", "write sampled time-series CSV")
		statsInt  = flag.Duration("stats-interval", time.Millisecond, "virtual-time sampling interval for -stats-out")
		exportOut = flag.String("export", "", "write the run-export bundle JSON (pipette-report input) to this file")
		flightOut = flag.String("flight-dump", "", "arm the flight recorder; the first uncorrectable read, fatal error, or panic dumps the recent-event ring to this file as JSON")
		faultProf = flag.String("fault-profile", "", "arm fault injection: site:spec rules, e.g. 'nand.read:rber*20,hmb.ring:0.01' (empty = off)")
		faultSeed = flag.Uint64("fault-seed", 0x5eed, "seed for the fault injector's per-site decision streams")
		arrivals  = flag.String("arrivals", "closed", "request arrival process: closed (next issues on completion), poisson, or bursty")
		rate      = flag.Float64("rate", 200_000, "open loop: offered arrival rate (requests per second of virtual time)")
		qd        = flag.Int("qd", 32, "open loop: in-flight request bound; arrivals past it queue for admission")
		burst     = flag.Int("burst", 64, "bursty arrivals: requests per burst")
		peak      = flag.Float64("peak", 8, "bursty arrivals: in-burst rate as a multiple of -rate")
		arrSeed   = flag.Uint64("arrival-seed", 0xa221, "open loop: arrival process seed")
	)
	flag.Parse()
	if *version {
		buildinfo.Fprint(os.Stdout, "pipette-sim")
		return
	}
	if _, err := fault.ParseProfile(*faultProf); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
		os.Exit(2)
	}
	switch *arrivals {
	case "closed", "poisson", "bursty":
	default:
		fmt.Fprintf(os.Stderr, "pipette-sim: unknown -arrivals %q (closed|poisson|bursty)\n", *arrivals)
		os.Exit(2)
	}
	ol := openLoop{mode: *arrivals, rate: *rate, depth: *qd, burst: *burst, peak: *peak, seed: *arrSeed}
	if ol.mode != "closed" && (*traceOut != "" || *statsOut != "" || *flightOut != "" || *listen != "") {
		fmt.Fprintln(os.Stderr, "pipette-sim: open-loop arrivals do not support -trace-out/-stats-out/-flight-dump/-listen")
		os.Exit(2)
	}

	topts := telemetryOpts{
		traceOut:      *traceOut,
		statsOut:      *statsOut,
		statsInterval: sim.Time((*statsInt).Nanoseconds()),
		flightOut:     *flightOut,
	}
	wls := strings.Split(*wl, ",")
	if len(wls) > 1 && (topts.traceOut != "" || topts.statsOut != "" || topts.flightOut != "" || *listen != "") {
		fmt.Fprintln(os.Stderr, "pipette-sim: -trace-out/-stats-out/-flight-dump/-listen need a single -workload")
		os.Exit(2)
	}

	// -export collects one report run per workload, in input order, and
	// writes the bundle after every replay finishes — deterministic at any
	// -j because the runs are private simulations rendered post-hoc.
	runs := make([]report.Run, len(wls))
	writeExport := func() error {
		if *exportOut == "" {
			return nil
		}
		exp := &report.Export{Tool: "pipette-sim", Version: buildinfo.Version, Runs: runs}
		if err := exp.WriteFile(*exportOut); err != nil {
			return err
		}
		fmt.Printf("run export written to %s (%d runs)\n", *exportOut, len(runs))
		return nil
	}

	if len(wls) == 1 {
		if *listen != "" {
			topts.reg = telemetry.NewRegistry(telemetry.L("job", "pipette-sim"))
			buildinfo.Register(topts.reg, "pipette-sim")
			topts.progress = &simProgress{total: uint64(*requests)}
			srv, err := telemetry.Serve(*listen, topts.reg, topts.progress.snapshot)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "pipette-sim: serving /metrics /healthz /progress on http://%s\n", srv.Addr())
		}
		if err := run(os.Stdout, wls[0], *dist, *requests, *fileMB, *pcMB, *fgMB, *fine, *seed, *faultProf, *faultSeed, ol, topts, &runs[0]); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
			os.Exit(1)
		}
		if err := writeExport(); err != nil {
			fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Several workloads: each is a fully private simulation, so replay them
	// as pool cells rendering into per-run buffers, printed in input order.
	bufs := make([]bytes.Buffer, len(wls))
	cells := make([]bench.Cell, 0, len(wls))
	for i, name := range wls {
		i, name := i, strings.TrimSpace(name)
		cells = append(cells, bench.Cell{
			Label: "sim/" + name,
			Run: func() (*bench.Result, error) {
				return nil, run(&bufs[i], name, *dist, *requests, *fileMB, *pcMB, *fgMB, *fine, *seed, *faultProf, *faultSeed, ol, telemetryOpts{}, &runs[i])
			},
		})
	}
	pool := bench.NewPool(*workers)
	err := pool.RunCells(cells)
	for i := range bufs {
		if i > 0 {
			fmt.Println()
		}
		os.Stdout.Write(bufs[i].Bytes())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
		os.Exit(1)
	}
	if err := writeExport(); err != nil {
		fmt.Fprintf(os.Stderr, "pipette-sim: %v\n", err)
		os.Exit(1)
	}
}

// openLoop is the parsed open-loop arrival configuration; mode "closed"
// selects the default synchronous replay.
type openLoop struct {
	mode  string
	rate  float64
	depth int
	burst int
	peak  float64
	seed  uint64
}

func run(w io.Writer, wl, dist string, requests int, fileMB, pcMB int64, fgMB int, fine bool, seed uint64, faultProf string, faultSeed uint64, ol openLoop, topts telemetryOpts, expRun *report.Run) (err error) {
	gen, err := makeGenerator(wl, dist, fileMB<<20, seed)
	if err != nil {
		return err
	}
	if ol.mode != "closed" {
		return runOpenLoop(w, wl, gen, requests, pcMB, fgMB, fine, faultProf, faultSeed, ol, expRun)
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:    gen.FileSize() + gen.FileSize()/2 + (64 << 20),
		PageCacheBytes:   pcMB << 20,
		FineCacheBytes:   fgMB << 20,
		DisableFineCache: !fine,
		FaultProfile:     faultProf,
		FaultSeed:        faultSeed,
	})
	if err != nil {
		return err
	}
	if topts.reg != nil {
		sys.RegisterMetrics(topts.reg)
	}
	if err := sys.CreateFile("workload.dat", gen.FileSize(), true); err != nil {
		return err
	}
	f, err := sys.Open("workload.dat", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		return err
	}

	// Every export file is created before the replay (a bad path fails
	// fast, not after minutes of simulation) and flushed by the deferred
	// Close even when the replay dies mid-run, so partial artifacts stay
	// readable for post-mortem work.
	var exports telemetry.Exports
	defer func() {
		if cerr := exports.Close(); err == nil {
			err = cerr
		}
	}()
	var rec *telemetry.Recorder
	if topts.traceOut != "" {
		rec = telemetry.NewRecorder()
		if err := exports.AddTrace(topts.traceOut, rec); err != nil {
			return err
		}
	}
	var sampler *telemetry.Sampler
	if topts.statsOut != "" {
		sampler, err = telemetry.NewSampler(topts.statsInterval, sys.Probes())
		if err != nil {
			return err
		}
		if err := exports.AddCSV(topts.statsOut, sampler); err != nil {
			return err
		}
	}
	var flight *telemetry.FlightRecorder
	var flightFile *os.File
	dumped := false
	if topts.flightOut != "" {
		flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents)
		if flightFile, err = os.Create(topts.flightOut); err != nil {
			return err
		}
		defer flightFile.Close()
	}
	// The first anomaly owns the dump: its ring holds the events leading
	// up to the problem, which later dumps would overwrite.
	dumpFlight := func(reason string) {
		if flight == nil || dumped {
			return
		}
		dumped = true
		if derr := flight.Dump(flightFile, reason, sys.Now()); derr != nil {
			fmt.Fprintf(os.Stderr, "pipette-sim: flight dump: %v\n", derr)
			return
		}
		fmt.Fprintf(w, "flight recorder dumped to %s (%s)\n", topts.flightOut, reason)
	}
	// A panic anywhere in the replay still dumps the ring — the events
	// leading up to the crash are exactly what the recorder is for — then
	// resumes unwinding.
	defer func() {
		if r := recover(); r != nil {
			dumpFlight(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()
	var tracers []telemetry.Tracer
	if rec != nil {
		tracers = append(tracers, rec)
	}
	if flight != nil {
		tracers = append(tracers, flight)
	}
	if len(tracers) > 0 {
		sys.SetTracer(telemetry.Tee(tracers...))
	}

	fmt.Fprintf(w, "workload %s over %.1f MiB, %d requests (fine cache: %v)\n\n",
		gen.Name(), float64(gen.FileSize())/(1<<20), requests, fine)

	buf := make([]byte, 64<<10)
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	var hist metrics.Histogram
	var lost int
	for i := 0; i < requests; i++ {
		req := gen.Next()
		if req.Size > len(buf) {
			buf = make([]byte, req.Size)
			payload = make([]byte, req.Size)
		}
		before := sys.Now()
		if req.Write {
			_, err = f.WriteAt(payload[:req.Size], req.Off)
		} else {
			_, err = f.ReadAt(buf[:req.Size], req.Off)
		}
		hist.Observe(sys.Now() - before)
		if err != nil {
			// Under an armed fault profile uncorrectable media errors are
			// expected outcomes, not harness failures: count and go on.
			if !errors.Is(err, pipette.ErrUncorrectable) {
				dumpFlight(fmt.Sprintf("fatal error at request %d: %v", i, err))
				return fmt.Errorf("request %d: %w", i, err)
			}
			lost++
			if topts.progress != nil {
				topts.progress.lost.Add(1)
			}
			dumpFlight(fmt.Sprintf("uncorrectable media error at request %d", i))
		}
		if topts.progress != nil {
			topts.progress.done.Store(uint64(i + 1))
		}
		if sampler != nil {
			sampler.Tick(sys.Now())
		}
	}
	err = nil // the loop's last request may have been a counted media error

	rep := sys.Report()
	if expRun != nil {
		st := rep.Stages
		*expRun = report.Run{
			Name:      wl,
			Requests:  uint64(requests),
			ElapsedNs: int64(rep.Elapsed),
			OpsPerSec: float64(requests) / rep.Elapsed.Seconds(),
			ReadAmp:   rep.IO.ReadAmplification(),
			Latency:   report.PercentilesOf(&hist),
			StageNs:   int64(st.Sum()),
			Stages:    report.StageRows(&st),
			Resources: rep.Resources,
		}
	}
	fmt.Fprintln(w, rep)
	if lost > 0 {
		fmt.Fprintf(w, "\nuncorrectable     %d of %d requests lost to media errors\n", lost, requests)
	}
	fmt.Fprintf(w, "\nthroughput        %.0f ops/s (virtual)\n",
		float64(requests)/rep.Elapsed.Seconds())

	if rec != nil {
		fmt.Fprintf(w, "\nper-phase latency breakdown:\n%s", rec.Breakdown().Render())
	}
	if cerr := exports.Close(); cerr != nil { // idempotent; the defer no-ops
		return cerr
	}
	if rec != nil {
		fmt.Fprintf(w, "trace written to %s (%d events; open in Perfetto / chrome://tracing)\n",
			topts.traceOut, rec.Events())
	}
	if sampler != nil {
		fmt.Fprintf(w, "time series written to %s (%d samples, %d series)\n",
			topts.statsOut, sampler.Rows(), len(sampler.Series()))
	}
	if flight != nil && !dumped {
		dumpFlight("end of run (no anomaly)")
	}
	return nil
}

// runOpenLoop replays the workload open-loop against the full Pipette
// stack: requests arrive on the configured schedule, up to -qd run
// concurrently over the contended device model, and latency is measured
// arrival to completion. Device-side contention (PCIe link, NVMe fetch
// arbitration) is on, matching pipette-bench's qdepth experiment.
func runOpenLoop(w io.Writer, wl string, gen workload.Generator, requests int, pcMB int64, fgMB int, fine bool, faultProf string, faultSeed uint64, ol openLoop, expRun *report.Run) error {
	prof, err := fault.ParseProfile(faultProf)
	if err != nil {
		return err
	}
	cfg := baseline.DefaultStackConfig(gen.FileSize())
	cfg.VFS.PageCachePages = int(pcMB << 20 / 4096)
	cfg.Core.HMB.DataBytes = fgMB << 20
	cfg.Core.OverflowMaxBytes = fgMB << 20
	cfg.Core.PageCacheFloorPages = cfg.VFS.PageCachePages / 8
	cfg.FaultProfile = prof
	cfg.FaultSeed = faultSeed
	cfg.SSD.LinkArbitration = true
	cfg.NVMe.Arbitration = 100 * sim.Nanosecond

	var e baseline.Engine
	if fine {
		e, err = baseline.NewPipette(cfg)
	} else {
		e, err = baseline.NewPipetteNoCache(cfg)
	}
	if err != nil {
		return err
	}

	var arr workload.Arrivals
	if ol.mode == "bursty" {
		arr, err = workload.NewBursty(ol.rate, ol.burst, ol.peak, ol.seed)
	} else {
		arr, err = workload.NewPoisson(ol.rate, ol.seed)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "workload %s over %.1f MiB, %d requests, open loop (%s arrivals, %.0f ops/s offered, qd %d, fine cache: %v)\n\n",
		gen.Name(), float64(gen.FileSize())/(1<<20), requests, arr.Name(), ol.rate, ol.depth, fine)

	res, err := bench.RunOpenLoop(e, gen, requests, bench.OpenLoopOpts{
		Arrivals: arr, Depth: ol.depth, Offered: ol.rate,
		// Match the closed-loop path: under an armed fault profile,
		// uncorrectable media errors are expected outcomes, not failures.
		TolerateMediaErrors: !prof.Empty(),
	})
	if err != nil {
		return err
	}
	if expRun != nil {
		*expRun = bench.ExportRun(wl, fmt.Sprintf("%s-qd%d-%s@%.0f", wl, res.Depth, res.Arrivals, ol.rate), res)
	}

	var queueUs float64
	if res.Stages.Requests > 0 {
		queueUs = (sim.Time(int64(res.Stages.Totals[telemetry.StageQueue])) /
			sim.Time(int64(res.Stages.Requests))).Micros()
	}
	fmt.Fprintf(w, "offered           %.0f ops/s\n", ol.rate)
	fmt.Fprintf(w, "achieved          %.0f ops/s (virtual)\n", res.Snapshot.ThroughputOpsPerSec())
	if res.Lost > 0 {
		fmt.Fprintf(w, "uncorrectable     %d of %d requests lost to media errors\n", res.Lost, requests)
	}
	fmt.Fprintf(w, "latency (arrival to completion)\n")
	fmt.Fprintf(w, "  mean            %.2f µs\n", res.Hist.Mean().Micros())
	fmt.Fprintf(w, "  p50             %.2f µs\n", res.Hist.Quantile(0.50).Micros())
	fmt.Fprintf(w, "  p99             %.2f µs\n", res.Hist.Quantile(0.99).Micros())
	fmt.Fprintf(w, "  max             %.2f µs\n", res.Hist.Max().Micros())
	fmt.Fprintf(w, "mean queue wait   %.2f µs\n", queueUs)
	return nil
}

func makeGenerator(wl, dist string, fileSize int64, seed uint64) (workload.Generator, error) {
	d := workload.Uniform
	if dist == "zipfian" {
		d = workload.Zipfian
	} else if dist != "uniform" {
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	switch wl {
	case "mixA", "mixB", "mixC", "mixD", "mixE":
		idx := int(wl[3] - 'A')
		return workload.NewSynthetic(workload.Mixes(fileSize, 4096, d, seed)[idx])
	case "recommender":
		cfg := workload.DefaultRecommenderConfig()
		cfg.TableBytes = fileSize
		cfg.Seed = seed
		return workload.NewRecommender(cfg)
	case "socialgraph":
		cfg := workload.DefaultSocialGraphConfig()
		cfg.Nodes = uint64(fileSize) / 120 // ~96 B node + ~2 edges
		cfg.Seed = seed
		return workload.NewSocialGraph(cfg)
	case "searchengine":
		cfg := workload.DefaultSearchEngineConfig()
		cfg.Terms = uint64(fileSize) / 600 // entry + mean posting footprint
		cfg.Seed = seed
		return workload.NewSearchEngine(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
}
