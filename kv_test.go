package pipette

import (
	"bytes"
	"fmt"
	"testing"
)

func TestKVPublicAPI(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20, PageCacheBytes: 4 << 20})
	kv, err := sys.OpenKV(KVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := kv.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := kv.Get("k042")
	if err != nil || !bytes.Equal(got, []byte("value-42")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if sys.Now() == 0 {
		t.Fatal("KV operations advanced no virtual time")
	}
	if err := kv.Delete("k042"); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Get("k042"); err != ErrNotFound {
		t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
	}
	var keys []string
	if err := kv.Scan("k040", 3, func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != fmt.Sprint([]string{"k040", "k041", "k043"}) {
		t.Fatalf("Scan = %v", keys)
	}

	// Restart: close, reopen, state recovered from the segment files.
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2, err := sys.OpenKV(KVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kv2.Len() != 199 {
		t.Fatalf("Len after restart = %d, want 199", kv2.Len())
	}
	if _, err := kv2.Get("k042"); err != ErrNotFound {
		t.Fatalf("deleted key resurrected by restart: %v", err)
	}
	if st := kv2.Stats(); st.Recovered == 0 {
		t.Fatal("restart replayed no records")
	}

	// MaintenanceTick compacts registered stores without error.
	for i := 0; i < 200; i++ {
		if err := kv2.Put(fmt.Sprintf("k%03d", i%50), bytes.Repeat([]byte("x"), 400)); err != nil {
			t.Fatal(err)
		}
	}
	sys.MaintenanceTick()
}

func TestTwoStoresCoexist(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20})
	a, err := sys.OpenKV(KVOptions{NamePrefix: "a/seg-"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.OpenKV(KVOptions{NamePrefix: "b/seg-", BlockReads: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Get("k"); !bytes.Equal(got, []byte("from-a")) {
		t.Fatalf("store a sees %q", got)
	}
	if got, _ := b.Get("k"); !bytes.Equal(got, []byte("from-b")) {
		t.Fatalf("store b sees %q", got)
	}
}

func TestFileClose(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 128 << 20})
	if err := sys.CreateFile("x", 1<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("x", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 0); err == nil {
		t.Fatal("read through closed handle succeeded")
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close not reported")
	}
	// The file itself is untouched: a fresh handle works.
	f2, err := sys.Open("x", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
}
