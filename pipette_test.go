package pipette

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func newSystem(t testing.TB, opts Options) *System {
	t.Helper()
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{CapacityBytes: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(Options{PageCacheBytes: -1}); err == nil {
		t.Error("negative page cache accepted")
	}
}

func TestDefaultsWork(t *testing.T) {
	sys := newSystem(t, Options{})
	if err := sys.CreateFile("a", 1<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("a", FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := f.ReadAt(buf, 5000); err != nil {
		t.Fatal(err)
	}
	if sys.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestFileLifecycle(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20})
	if err := sys.CreateFile("x", 1<<20, true); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateFile("y", 1<<20, false); err != nil {
		t.Fatal(err)
	}
	files := sys.Files()
	if len(files) != 2 || files[0] != "x" || files[1] != "y" {
		t.Fatalf("Files = %v", files)
	}
	if err := sys.RemoveFile("y"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Open("y", ReadOnly); err == nil {
		t.Fatal("opened removed file")
	}
	f, err := sys.Open("x", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1<<20 || f.Name() != "x" {
		t.Fatalf("file metadata wrong: %q %d", f.Name(), f.Size())
	}
}

func TestReadWriteSyncRoundTrip(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20})
	if err := sys.CreateFile("data", 4<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("public api round trip")
	if _, err := f.WriteAt(payload, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.IO.BytesWritten == 0 {
		t.Fatal("sync wrote nothing")
	}
}

func TestFineCacheVisibleInReport(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20, FineCacheBytes: 4 << 20})
	if err := sys.CreateFile("data", 8<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for round := 0; round < 3; round++ {
		for i := int64(0); i < 50; i++ {
			if _, err := f.ReadAt(buf, i*8192); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := sys.Report()
	if rep.FineCache.Hits == 0 {
		t.Fatalf("no fine cache hits: %+v", rep.FineCache)
	}
	if rep.FineCacheMemoryBytes == 0 {
		t.Fatal("fine cache memory not reported")
	}
	if rep.IO.BytesRequested == 0 || rep.IO.BytesTransferred == 0 {
		t.Fatalf("io accounting empty: %+v", rep.IO)
	}
	// Traffic far below requested (cache absorbed repeats) — the paper's
	// headline property surfaced through the public API.
	if rep.IO.BytesTransferred >= rep.IO.BytesRequested {
		t.Fatalf("no traffic reduction: %+v", rep.IO)
	}
	if s := rep.String(); len(s) < 100 {
		t.Fatalf("report string too short: %q", s)
	}
}

func TestDisableFineCache(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20, DisableFineCache: true})
	if err := sys.CreateFile("data", 4<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i := 0; i < 10; i++ {
		if _, err := f.ReadAt(buf, 4096); err != nil {
			t.Fatal(err)
		}
	}
	rep := sys.Report()
	if rep.Core.TempBypasses != 10 || rep.Core.Admissions != 0 {
		t.Fatalf("no-cache mode stats: %+v", rep.Core)
	}
}

func TestConcurrentAccess(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 256 << 20})
	if err := sys.CreateFile("data", 16<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	stop := sys.StartMaintenance(time.Millisecond)
	defer stop()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := 0; i < 200; i++ {
				off := int64((g*1000+i)%4000) * 4096
				if _, err := f.ReadAt(buf, off); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	rep := sys.Report()
	if rep.Core.FineReads == 0 {
		t.Fatal("no fine reads recorded")
	}
}

func TestMaintenanceStopIdempotent(t *testing.T) {
	sys := newSystem(t, Options{CapacityBytes: 64 << 20})
	stop := sys.StartMaintenance(time.Millisecond)
	stop()
	stop() // second call must not panic
	sys.MaintenanceTick()
}
