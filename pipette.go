// Package pipette is the public facade of the Pipette reproduction: a
// complete simulated storage system — NAND flash, FTL, NVMe controller with
// the fine-grained read engine, block layer, extent filesystem, page cache —
// with the Pipette fine-grained read framework (DAC'22) installed on top.
//
// A System owns its virtual clock: callers use ordinary ReadAt/WriteAt and
// the system advances simulated time internally, so application code looks
// like normal file I/O:
//
//	sys, _ := pipette.New(pipette.Options{CapacityBytes: 1 << 30})
//	_ = sys.CreateFile("embeddings", 256<<20, true)
//	f, _ := sys.Open("embeddings", pipette.FineGrained)
//	buf := make([]byte, 128)
//	f.ReadAt(buf, 4096)             // byte-granular SSD read
//	fmt.Println(sys.Report())       // traffic, hit ratios, virtual time
//
// The deeper layers live in internal/ packages; experiments and ablations
// are driven by cmd/pipette-bench.
package pipette

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"pipette/internal/blockdev"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/fault"
	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
)

// OpenFlag mirrors the VFS open flags.
type OpenFlag = vfs.OpenFlag

// Open flags: FineGrained is the paper's O_FINE_GRAINED.
const (
	ReadOnly    = vfs.ReadOnly
	ReadWrite   = vfs.ReadWrite
	FineGrained = vfs.FineGrained
)

// ErrUncorrectable reports a read that exhausted the device's ECC
// read-retry ladder: the data is lost, not silently wrong. Only surfaces
// under an armed fault profile; classify with errors.Is.
var ErrUncorrectable = nvme.ErrUncorrectable

// Options configures a System. Zero values take defaults.
type Options struct {
	// CapacityBytes provisions the flash array (default 1 GiB).
	CapacityBytes int64
	// PageCacheBytes budgets the host page cache (default 256 MiB).
	PageCacheBytes int64
	// FineCacheBytes budgets the fine-grained read cache's Data Area
	// (default 60 MiB, the paper's HMB mapping region scale).
	FineCacheBytes int
	// DisableFineCache runs the byte-granular path without the cache
	// (the paper's "Pipette w/o cache" configuration).
	DisableFineCache bool
	// Core overrides the framework tuning; leave zero for defaults.
	Core *core.Config
	// FaultProfile arms deterministic fault injection, in the syntax of
	// fault.ParseProfile ("nand.read:rber*20,hmb.ring:0.01"). Empty (the
	// default) injects nothing and adds zero overhead.
	FaultProfile string
	// FaultSeed seeds the injector's per-site decision streams (default
	// 0x5eed). Same profile + same seed + same workload = same faults.
	FaultSeed uint64
}

// System is one simulated host + SSD with Pipette installed.
// All methods are safe for concurrent use.
type System struct {
	mu    sync.Mutex
	clock sim.Clock

	ctrl *ssd.Controller
	drv  *nvme.Driver
	blk  *blockdev.Layer
	v    *vfs.VFS
	core *core.Pipette
	inj  *fault.Injector // nil unless Options.FaultProfile armed one
	kvs  []*kv.Store     // stores compacted by MaintenanceTick
	sa   *telemetry.StageAccount
	res  *resource.Tracker
}

// New assembles a system.
func New(opts Options) (*System, error) {
	if opts.CapacityBytes == 0 {
		opts.CapacityBytes = 1 << 30
	}
	if opts.PageCacheBytes == 0 {
		opts.PageCacheBytes = 256 << 20
	}
	if opts.CapacityBytes < 0 || opts.PageCacheBytes < 0 || opts.FineCacheBytes < 0 {
		return nil, errors.New("pipette: negative budgets")
	}

	scfg := ssd.DefaultConfig()
	pageBytes := int64(scfg.NAND.PageSize)
	needPages := opts.CapacityBytes / pageBytes
	perPlane := int(needPages/int64(scfg.NAND.Dies()*scfg.NAND.PagesPerBlock*scfg.NAND.PlanesPerDie)) + 1
	if perPlane < 6 {
		perPlane = 6
	}
	scfg.NAND.BlocksPerPlane = perPlane
	ctrl, err := ssd.New(scfg)
	if err != nil {
		return nil, err
	}
	drv := nvme.NewDriver(ctrl, 256, nvme.DefaultCosts())
	blk, err := blockdev.New(drv, ctrl.PageSize(), blockdev.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fs := extfs.New(ctrl)
	vcfg := vfs.DefaultConfig()
	vcfg.PageCachePages = int(opts.PageCacheBytes / pageBytes)
	v, err := vfs.New(fs, blk, vcfg)
	if err != nil {
		return nil, err
	}
	ccfg := core.DefaultConfig()
	if opts.Core != nil {
		ccfg = *opts.Core
	}
	if opts.FineCacheBytes != 0 {
		ccfg.HMB.DataBytes = opts.FineCacheBytes
	}
	p, err := core.New(v, drv, ccfg)
	if err != nil {
		return nil, err
	}
	if opts.DisableFineCache {
		p.DisableCache()
	}
	s := &System{ctrl: ctrl, drv: drv, blk: blk, v: v, core: p,
		sa: telemetry.NewStageAccount(), res: resource.NewTracker()}
	// Stage attribution and resource occupancy thread through every layer;
	// registration order (dma, nand, ring) is the export row order.
	v.SetStages(s.sa)
	blk.SetStages(s.sa)
	drv.SetStages(s.sa)
	ctrl.SetStages(s.sa)
	p.SetStages(s.sa)
	ctrl.SetResources(s.res)
	drv.SetRingTimeline(s.res.Register("nvme.ring"))
	if opts.FaultProfile != "" {
		prof, err := fault.ParseProfile(opts.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("pipette: %w", err)
		}
		seed := opts.FaultSeed
		if seed == 0 {
			seed = 0x5eed
		}
		if inj := prof.NewInjector(seed); inj != nil {
			s.inj = inj
			ctrl.SetInjector(inj)
			v.SetInjector(inj)
			p.SetInjector(inj)
		}
	}
	return s, nil
}

// SetTracer installs a tracer on every layer of the system: VFS, block
// layer, NVMe driver, SSD controller (cascading to FTL and NAND), and the
// fine-grained read framework. Pass nil to return to the no-op default.
func (s *System) SetTracer(tr telemetry.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr = telemetry.OrNop(tr)
	s.v.SetTracer(tr)
	s.blk.SetTracer(tr)
	s.drv.SetTracer(tr)
	s.ctrl.SetTracer(tr)
	s.core.SetTracer(tr)
}

// Probes returns the sampled time series of the system: read amplification,
// both cache hit ratios, the adaptive threshold, fine-cache memory, HMB
// info-ring occupancy, and per-channel NAND bus utilization. Feed them to a
// telemetry.Sampler.
func (s *System) Probes() []telemetry.Probe {
	locked := func(get func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return get()
		}
	}
	probes := []telemetry.Probe{
		telemetry.GaugeProbe("read_amp", locked(func() float64 {
			io := s.v.IO()
			fio := s.core.IO()
			io.BytesTransferred += fio.BytesTransferred
			return io.ReadAmplification()
		})),
		telemetry.GaugeProbe("pc_hit_ratio", locked(func() float64 {
			hits, accesses, _, _ := s.v.PageCache().Stats()
			c := metrics.Cache{Hits: hits, Accesses: accesses}
			return c.HitRatio()
		})),
		telemetry.GaugeProbe("fine_hit_ratio", locked(func() float64 {
			c := s.core.CacheStats()
			return c.HitRatio()
		})),
		telemetry.GaugeProbe("threshold", locked(func() float64 {
			return float64(s.core.Threshold())
		})),
		telemetry.GaugeProbe("fine_mem_bytes", locked(func() float64 {
			return float64(s.core.MemoryBytes())
		})),
		telemetry.GaugeProbe("overflow_bytes", locked(func() float64 {
			return float64(s.core.OverflowBytes())
		})),
		telemetry.GaugeProbe("hmb_info_pending", locked(func() float64 {
			return float64(s.core.Region().Info().Pending())
		})),
	}
	if s.inj != nil {
		probes = append(probes,
			telemetry.GaugeProbe("fault.injected", locked(func() float64 {
				return float64(s.inj.TotalInjected())
			})),
			telemetry.GaugeProbe("fault.uncorrectable", locked(func() float64 {
				return float64(s.ctrl.Faults().Uncorrectable)
			})),
			telemetry.GaugeProbe("fault.fallbacks", locked(func() float64 {
				return float64(s.core.RingFallbacks() + s.core.DMAFallbacks())
			})),
		)
	}
	arr := s.ctrl.Array()
	for ch := 0; ch < arr.Config().Channels; ch++ {
		ch := ch
		probes = append(probes, telemetry.RateProbe(
			fmt.Sprintf("ch%d_busy", ch),
			func() sim.Time {
				s.mu.Lock()
				defer s.mu.Unlock()
				return arr.ChannelBusy(ch)
			}))
	}
	return probes
}

// RegisterMetrics exposes the system's live counters on a
// telemetry.Registry as scrape-time collectors, under the same family
// names pipette-bench's harness publishes — one dashboard serves both. The
// collectors are stateless reads of the layers' accumulators, each taking
// the System lock for the duration of one getter: a scraper may briefly
// delay application threads but can never advance virtual time or change
// any simulated outcome.
func (s *System) RegisterMetrics(reg *telemetry.Registry) {
	lockedU := func(get func() uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return get()
		}
	}
	lockedF := func(get func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return get()
		}
	}

	reg.CounterFunc("ssd_reads_total", "read commands issued to the device",
		lockedU(func() uint64 { return s.v.IO().BlockReads }), telemetry.L("interface", "block"))
	reg.CounterFunc("ssd_reads_total", "read commands issued to the device",
		lockedU(func() uint64 { return s.core.IO().FineReads }), telemetry.L("interface", "fine"))
	reg.CounterFunc("ssd_writes_total", "write commands issued to the device",
		lockedU(func() uint64 { return s.v.IO().Writes }))
	reg.CounterFunc("ssd_bytes_total", "host-interface traffic",
		lockedU(func() uint64 { return s.v.IO().BytesRequested }), telemetry.L("direction", "requested"))
	reg.CounterFunc("ssd_bytes_total", "host-interface traffic",
		lockedU(func() uint64 { return s.v.IO().BytesTransferred + s.core.IO().BytesTransferred }),
		telemetry.L("direction", "transferred"))
	reg.CounterFunc("ssd_bytes_total", "host-interface traffic",
		lockedU(func() uint64 { return s.v.IO().BytesWritten }), telemetry.L("direction", "written"))

	reg.CounterFunc("cache_hits_total", "cache hits",
		lockedU(func() uint64 { h, _, _, _ := s.v.PageCache().Stats(); return h }),
		telemetry.L("cache", "page"))
	reg.CounterFunc("cache_accesses_total", "cache accesses",
		lockedU(func() uint64 { _, a, _, _ := s.v.PageCache().Stats(); return a }),
		telemetry.L("cache", "page"))
	reg.CounterFunc("cache_hits_total", "cache hits",
		lockedU(func() uint64 { return s.core.CacheStats().Hits }), telemetry.L("cache", "fine"))
	reg.CounterFunc("cache_accesses_total", "cache accesses",
		lockedU(func() uint64 { return s.core.CacheStats().Accesses }), telemetry.L("cache", "fine"))

	kvTotal := func(get func(kv.Stats) uint64) func() uint64 {
		return lockedU(func() uint64 {
			var n uint64
			for _, st := range s.kvs {
				n += get(st.Stats())
			}
			return n
		})
	}
	reg.CounterFunc("kv_ops_total", "KV store operations",
		kvTotal(func(st kv.Stats) uint64 { return st.Puts }), telemetry.L("op", "put"))
	reg.CounterFunc("kv_ops_total", "KV store operations",
		kvTotal(func(st kv.Stats) uint64 { return st.Gets }), telemetry.L("op", "get"))
	reg.CounterFunc("kv_rotations_total", "KV log segments sealed",
		kvTotal(func(st kv.Stats) uint64 { return st.Rotations }))
	reg.CounterFunc("kv_compactions_total", "KV segments compacted",
		kvTotal(func(st kv.Stats) uint64 { return st.Compactions }))
	reg.CounterFunc("kv_log_bytes_total", "KV value-log traffic",
		kvTotal(func(st kv.Stats) uint64 { return st.BytesWritten }), telemetry.L("direction", "written"))
	reg.CounterFunc("kv_log_bytes_total", "KV value-log traffic",
		kvTotal(func(st kv.Stats) uint64 { return st.BytesRead }), telemetry.L("direction", "read"))

	if s.inj != nil {
		faultU := func(get func(fault.Report) uint64) func() uint64 {
			return lockedU(func() uint64 { return get(s.faults()) })
		}
		reg.CounterFunc("fault_injected_total", "fault decisions drawn across all sites",
			faultU(func(r fault.Report) uint64 { return r.Injected }))
		reg.CounterFunc("fault_ecc_retries_total", "NAND read-retry steps charged by the ECC ladder",
			faultU(func(r fault.Report) uint64 { return r.ECCRetries }))
		reg.CounterFunc("fault_uncorrectable_total", "reads that exhausted the retry budget",
			faultU(func(r fault.Report) uint64 { return r.Uncorrectable }))
		reg.CounterFunc("fault_fallbacks_total", "fine reads re-served via block I/O",
			faultU(func(r fault.Report) uint64 { return r.RingFallbacks }), telemetry.L("path", "ring"))
		reg.CounterFunc("fault_fallbacks_total", "fine reads re-served via block I/O",
			faultU(func(r fault.Report) uint64 { return r.DMAFallbacks }), telemetry.L("path", "dma"))
		reg.CounterFunc("fault_retries_total", "commands re-issued after a fault",
			faultU(func(r fault.Report) uint64 { return r.ProgramRetries }), telemetry.L("site", "program"))
		reg.CounterFunc("fault_retries_total", "commands re-issued after a fault",
			faultU(func(r fault.Report) uint64 { return r.WritebackRetries }), telemetry.L("site", "writeback"))
	}

	reg.GaugeFunc("pipette_virtual_seconds", "elapsed simulated time",
		lockedF(func() float64 { return s.clock.Now().Seconds() }))
	reg.GaugeFunc("pipette_read_amplification", "transferred / requested bytes",
		lockedF(func() float64 {
			io := s.v.IO()
			io.BytesTransferred += s.core.IO().BytesTransferred
			return io.ReadAmplification()
		}))
	reg.GaugeFunc("pipette_fine_threshold_bytes", "adaptive fine-read admission threshold",
		lockedF(func() float64 { return float64(s.core.Threshold()) }))
	reg.GaugeFunc("pipette_cache_resident_bytes", "cache memory in use",
		lockedF(func() float64 { return float64(s.v.PageCache().MemoryBytes()) }),
		telemetry.L("cache", "page"))
	reg.GaugeFunc("pipette_cache_resident_bytes", "cache memory in use",
		lockedF(func() float64 { return float64(s.core.MemoryBytes()) }),
		telemetry.L("cache", "fine"))

	// Per-request stage attribution (atomic mirrors, scraped lock-free) and
	// per-resource occupancy (scrape-time reads under the system lock).
	s.sa.BindRegistry(reg)
	for i := 0; i < s.res.Len(); i++ {
		tl := s.res.At(i)
		reg.GaugeFunc("pipette_resource_utilization",
			"busy fraction of elapsed virtual time per hardware resource",
			lockedF(func() float64 { return tl.Utilization(s.clock.Now()) }),
			telemetry.L("resource", tl.Name()))
		reg.CounterFunc("pipette_resource_busy_ns_total",
			"cumulative busy virtual time per hardware resource, in nanoseconds",
			lockedU(func() uint64 { return uint64(tl.Busy()) }),
			telemetry.L("resource", tl.Name()))
	}
}

// Stages exposes the per-request stage account. Readers must not race
// in-flight I/O: snapshot between requests or under an idle system.
func (s *System) Stages() *telemetry.StageAccount {
	return s.sa
}

// Resources exposes the resource-occupancy tracker, same caveat as Stages.
func (s *System) Resources() *resource.Tracker {
	return s.res
}

// CreateFile makes a fixed-size file. preload fills it with deterministic
// device content at zero virtual cost (dataset setup).
func (s *System) CreateFile(name string, size int64, preload bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.v.FS().Create(name, size, extfs.CreateOpts{Preload: preload})
	return err
}

// RemoveFile deletes a file: cached pages are discarded, pending writeback
// cancelled, and its blocks trimmed and returned to the allocator.
func (s *System) RemoveFile(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Remove(name)
}

// Files lists file names.
func (s *System) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.FS().Files()
}

// File is an open handle. ReadAt/WriteAt implement io.ReaderAt/io.WriterAt
// over virtual time.
type File struct {
	sys *System
	f   *vfs.File
}

// Open opens an existing file. Pass FineGrained to permit the byte-granular
// read path for this descriptor.
func (s *System) Open(name string, flags OpenFlag) (*File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.v.Open(name, flags)
	if err != nil {
		return nil, err
	}
	return &File{sys: s, f: f}, nil
}

// Size reports the file size.
func (f *File) Size() int64 { return f.f.Size() }

// Name reports the file name.
func (f *File) Name() string { return f.f.Inode().Name }

// ReadAt reads len(p) bytes at off, advancing the system's virtual clock by
// the simulated service time.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	s := f.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	n, done, err := f.f.ReadAt(s.clock.Now(), p, off)
	s.clock.AdvanceTo(done)
	return n, err
}

// WriteAt writes len(p) bytes at off.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	s := f.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	n, done, err := f.f.WriteAt(s.clock.Now(), p, off)
	s.clock.AdvanceTo(done)
	return n, err
}

// Sync flushes the file's dirty pages (fsync).
func (f *File) Sync() error {
	s := f.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	done, err := f.f.Sync(s.clock.Now())
	s.clock.AdvanceTo(done)
	return err
}

// Close releases the handle: further I/O through it fails, and the last
// close of a file drops its per-file readahead state. Dirty pages stay in
// the page cache (close does not imply fsync — call Sync first for that).
func (f *File) Close() error {
	s := f.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.f.Close()
}

// Now reports elapsed virtual time.
func (s *System) Now() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock.Now()
}

// MaintenanceTick runs one stage of the fine cache's maintenance thread
// (§3.2.3) and one compaction round of every open KV store. StartMaintenance
// runs it periodically in wall-clock time.
func (s *System) MaintenanceTick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.MaintenanceTick()
	s.tickKVs()
}

// StartMaintenance launches the maintenance goroutine; the returned stop
// function terminates it.
func (s *System) StartMaintenance(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.MaintenanceTick()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Report summarizes system activity.
type Report struct {
	Elapsed sim.Time

	IO        metrics.IO
	PageCache metrics.Cache
	FineCache metrics.Cache

	FineCacheMemoryBytes uint64
	PageCacheMemoryBytes uint64
	Threshold            uint32
	Core                 core.Stats

	// Faults is the injection/recovery ledger, nil when no fault profile is
	// armed — so the rendered report is unchanged for fault-free systems.
	Faults *fault.Report

	// Stages is the per-request time attribution accumulated across the
	// run; its waterfall table is the conservation invariant made visible.
	Stages telemetry.StageSnapshot
	// Resources is the per-resource occupancy snapshot (NAND channels and
	// dies, PCIe DMA link, NVMe ring).
	Resources *resource.Snapshot
}

// Report gathers a snapshot.
func (s *System) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{
		Elapsed:   s.clock.Now(),
		IO:        s.v.IO(),
		FineCache: s.core.CacheStats(),
		Threshold: s.core.Threshold(),
		Core:      s.core.Stats(),
	}
	fio := s.core.IO()
	r.IO.BytesTransferred += fio.BytesTransferred
	r.IO.FineReads = fio.FineReads
	hits, accesses, ins, evs := s.v.PageCache().Stats()
	r.PageCache = metrics.Cache{Hits: hits, Accesses: accesses, Insertions: ins, Evictions: evs}
	r.PageCacheMemoryBytes = s.v.PageCache().MemoryBytes()
	r.FineCacheMemoryBytes = s.core.MemoryBytes()
	r.Stages = s.sa.Snapshot()
	r.Resources = s.res.Snapshot(s.clock.Now())
	if s.inj != nil {
		f := s.faults()
		r.Faults = &f
	}
	return r
}

// faults assembles the reliability ledger. Callers hold s.mu.
func (s *System) faults() fault.Report {
	cf := s.ctrl.Faults()
	return fault.Report{
		Injected:         s.inj.TotalInjected(),
		ECCRetries:       cf.ECCRetries,
		Uncorrectable:    cf.Uncorrectable,
		RingCorruptions:  cf.RingCorruptions,
		DMACorruptions:   cf.DMACorruptions,
		RingFallbacks:    s.core.RingFallbacks(),
		DMAFallbacks:     s.core.DMAFallbacks(),
		ProgramRetries:   cf.ProgramRetries,
		WritebackRetries: s.v.WritebackRetries(),
	}
}

// String renders the report for humans.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time      %v\n", r.Elapsed)
	fmt.Fprintf(&b, "requested         %.2f MB\n", float64(r.IO.BytesRequested)/(1<<20))
	fmt.Fprintf(&b, "read traffic      %.2f MB (amplification %.2fx)\n",
		r.IO.TrafficMB(), r.IO.ReadAmplification())
	fmt.Fprintf(&b, "write traffic     %.2f MB\n", float64(r.IO.BytesWritten)/(1<<20))
	fmt.Fprintf(&b, "page cache        %.1f%% hit (%d/%d), %.1f MB resident\n",
		r.PageCache.HitRatio()*100, r.PageCache.Hits, r.PageCache.Accesses,
		float64(r.PageCacheMemoryBytes)/(1<<20))
	fmt.Fprintf(&b, "fine cache        %.1f%% hit (%d/%d), %.1f MB resident, threshold %d\n",
		r.FineCache.HitRatio()*100, r.FineCache.Hits, r.FineCache.Accesses,
		float64(r.FineCacheMemoryBytes)/(1<<20), r.Threshold)
	fmt.Fprintf(&b, "fine path         %d reads, %d admissions, %d bypasses, %d evictions, %d migrations, %d invalidations",
		r.Core.FineReads, r.Core.Admissions, r.Core.TempBypasses,
		r.Core.Evictions, r.Core.Migrations, r.Core.Invalidations)
	if f := r.Faults; f != nil {
		fmt.Fprintf(&b, "\nfaults            %d injected: %d ECC retries, %d uncorrectable, %d ring + %d DMA fallbacks, %d program + %d writeback retries",
			f.Injected, f.ECCRetries, f.Uncorrectable,
			f.RingFallbacks, f.DMAFallbacks, f.ProgramRetries, f.WritebackRetries)
	}
	if r.Stages.Requests > 0 {
		fmt.Fprintf(&b, "\n\nstage waterfall\n%s", r.Stages.Waterfall().Render())
	}
	if r.Resources != nil && len(r.Resources.Resources) > 0 {
		fmt.Fprintf(&b, "\nresource utilization\n%s", r.Resources.Table(false).Render())
	}
	return b.String()
}
