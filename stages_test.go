package pipette

import (
	"errors"
	"strings"
	"testing"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// attachConservationCheck asserts, for every finished request, that the
// attributed segments are contiguous and partition [start, end] exactly —
// the conservation invariant, checked per request rather than only on the
// aggregate sums.
func attachConservationCheck(t *testing.T, sys *System) {
	t.Helper()
	sys.Stages().SetOnFinish(func(segs []telemetry.StageSeg, start, end sim.Time) {
		at := start
		var sum sim.Time
		for i, seg := range segs {
			if seg.Start != at {
				t.Errorf("segment %d starts at %v, want %v (gap)", i, seg.Start, at)
			}
			if seg.End <= seg.Start {
				t.Errorf("segment %d is empty or inverted: [%v, %v)", i, seg.Start, seg.End)
			}
			sum += seg.End - seg.Start
			at = seg.End
		}
		if at != end {
			t.Errorf("segments end at %v, want request end %v", at, end)
		}
		if sum != end-start {
			t.Errorf("stage sum %v != end-to-end latency %v", sum, end-start)
		}
	})
}

// checkAggregateConservation asserts the run-level invariants: zero
// contiguity violations and stage totals summing exactly to the summed
// end-to-end latencies.
func checkAggregateConservation(t *testing.T, sys *System) {
	t.Helper()
	sa := sys.Stages()
	if g := sa.Gaps(); g != 0 {
		t.Fatalf("Gaps() = %d, want 0", g)
	}
	if sum, el := sa.Sum(), sa.Elapsed(); sum != el {
		t.Fatalf("Sum() = %v != Elapsed() = %v", sum, el)
	}
}

// TestStageConservationMixedWorkload drives fine reads, large block reads,
// writes, and fsync through a fault-free system and requires exact stage
// conservation on every request, zero residual ("other") time, and the
// stages a healthy request path must visit.
func TestStageConservationMixedWorkload(t *testing.T) {
	sys, err := New(Options{CapacityBytes: 64 << 20, PageCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	attachConservationCheck(t, sys)
	if err := sys.CreateFile("data", 8<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", FineGrained|ReadWrite)
	if err != nil {
		t.Fatal(err)
	}

	small := make([]byte, 128)
	large := make([]byte, 256<<10)
	for i := 0; i < 32; i++ {
		if _, err := f.ReadAt(small, int64(i)*8192); err != nil {
			t.Fatalf("fine read %d: %v", i, err)
		}
	}
	// Re-read the same ranges: fine-cache hits must conserve too.
	for i := 0; i < 32; i++ {
		if _, err := f.ReadAt(small, int64(i)*8192); err != nil {
			t.Fatalf("fine re-read %d: %v", i, err)
		}
	}
	if _, err := f.ReadAt(large, 4<<20); err != nil {
		t.Fatalf("block read: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := f.WriteAt(large[:8192], int64(i)*131072); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	checkAggregateConservation(t, sys)
	sa := sys.Stages()
	for _, st := range []telemetry.Stage{
		telemetry.StageSyscall, telemetry.StageCache, telemetry.StageQueue,
		telemetry.StageConstruct, telemetry.StageRing, telemetry.StageFirmware,
		telemetry.StageNAND, telemetry.StageDMA, telemetry.StageWriteback,
		telemetry.StageCopyout,
	} {
		if sa.Total(st) == 0 {
			t.Errorf("stage %v never attributed any time", st)
		}
	}
	if other := sa.Total(telemetry.StageOther); other != 0 {
		t.Errorf("residual (other) time = %v, want 0: some interval went unclaimed", other)
	}
	if sa.Total(telemetry.StageRetry) != 0 {
		t.Error("retry time attributed on a fault-free run")
	}

	rep := sys.Report()
	out := rep.String()
	if !strings.Contains(out, "stage waterfall") || !strings.Contains(out, "resource utilization") {
		t.Fatalf("report misses stage/utilization sections:\n%s", out)
	}
	if rep.Resources == nil || len(rep.Resources.Resources) == 0 {
		t.Fatal("report carries no resource snapshot")
	}
	var nandBusy, dmaBusy int64
	for _, r := range rep.Resources.Resources {
		switch {
		case strings.HasPrefix(r.Name, "nand.ch"):
			nandBusy += r.BusyNs
		case r.Name == "pcie.dma":
			dmaBusy = r.BusyNs
		}
	}
	if nandBusy == 0 || dmaBusy == 0 {
		t.Fatalf("resource occupancy not recorded: nand=%d dma=%d", nandBusy, dmaBusy)
	}
}

// TestStageConservationECCRetry arms bit errors on every NAND page read.
// The retry ladder's re-senses must land in the retry stage, and every
// request — including the ones that surface ErrUncorrectable — must still
// conserve exactly.
func TestStageConservationECCRetry(t *testing.T) {
	sys, err := New(Options{CapacityBytes: 64 << 20, FaultProfile: "nand.read:1", FaultSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	attachConservationCheck(t, sys)
	if err := sys.CreateFile("data", 4<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var failed int
	for page := int64(0); page < 256; page++ {
		if _, err := f.ReadAt(buf, page*4096); err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("page %d: unexpected error %v", page, err)
			}
			failed++
		}
	}
	rep := sys.Report()
	if rep.Faults == nil || rep.Faults.ECCRetries == 0 {
		t.Fatal("profile injected no ECC retries")
	}
	if failed == 0 {
		t.Fatal("no uncorrectable reads at full injection; error-path conservation unexercised")
	}
	checkAggregateConservation(t, sys)
	sa := sys.Stages()
	if sa.Total(telemetry.StageRetry) == 0 {
		t.Fatal("ECC ladder charged no retry-stage time")
	}
	if sa.Total(telemetry.StageRetry) <= sa.Total(telemetry.StageNAND) {
		// Every read faults, and each ladder step costs a full re-read; the
		// wasted time must dominate the single first sense.
		t.Errorf("retry %v <= nand %v: ladder time not reattributed",
			sa.Total(telemetry.StageRetry), sa.Total(telemetry.StageNAND))
	}
}

// TestStageConservationFineFallback arms Info-Area ring corruption: fine
// reads are rejected by the device and re-served via block I/O. The wasted
// fine attempt must be re-labeled retry, and the whole request — fine
// attempt plus block service — must still sum to its end-to-end latency.
func TestStageConservationFineFallback(t *testing.T) {
	sys, err := New(Options{CapacityBytes: 64 << 20, FaultProfile: "hmb.ring:1#4"})
	if err != nil {
		t.Fatal(err)
	}
	attachConservationCheck(t, sys)
	if err := sys.CreateFile("data", 8<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i := 0; i < 8; i++ {
		if _, err := f.ReadAt(buf, int64(i)*40960); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	rep := sys.Report()
	if rep.Faults == nil || rep.Faults.RingFallbacks != 4 {
		t.Fatalf("RingFallbacks = %v, want 4", rep.Faults)
	}
	checkAggregateConservation(t, sys)
	sa := sys.Stages()
	if sa.Total(telemetry.StageRetry) == 0 {
		t.Fatal("fallback attempts charged no retry-stage time")
	}
	// The fallen-back requests still completed via the block path.
	if sa.Total(telemetry.StageNAND) == 0 || sa.Total(telemetry.StageDMA) == 0 {
		t.Fatal("block re-serve left no nand/dma time")
	}
}
