// Adaptive: demonstrates the three adaptive mechanisms of §3.2 reacting to
// a shifting workload. Phase 1 streams low-reuse scattered reads — the
// admission threshold climbs to keep cold data out of the cache. Phase 2
// hammers a small hot set — the threshold falls and the hit ratio soars.
// Phase 3 switches object sizes — slab reassignment recycles the idle
// class's slabs.
package main

import (
	"fmt"
	"log"

	"pipette"
	"pipette/internal/core"
)

func main() {
	ccfg := core.DefaultConfig()
	ccfg.HMB.DataBytes = 4 << 20
	ccfg.AdaptWindow = 512
	ccfg.MaintenanceEvery = 4096
	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  1 << 30,
		PageCacheBytes: 16 << 20,
		Core:           &ccfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	const size = 512 << 20
	if err := sys.CreateFile("shifting.dat", size, true); err != nil {
		log.Fatal(err)
	}
	f, err := sys.Open("shifting.dat", pipette.FineGrained)
	if err != nil {
		log.Fatal(err)
	}

	show := func(phase string) {
		r := sys.Report()
		fmt.Printf("%-28s threshold=%d  fgrc hit=%5.1f%%  admissions=%-6d bypasses=%-6d reassignments=%d\n",
			phase, r.Threshold, r.FineCache.HitRatio()*100,
			r.Core.Admissions, r.Core.TempBypasses, r.Core.Reassignments)
	}

	buf := make([]byte, 128)
	// Phase 1: 20k scattered reads, essentially no reuse. The adaptive
	// threshold should rise: promoting one-shot data would only pollute.
	for i := 0; i < 20_000; i++ {
		off := (int64(i) * 25_013) % (size - 128)
		if _, err := f.ReadAt(buf, off); err != nil {
			log.Fatal(err)
		}
	}
	show("after cold scan:")

	// Phase 2: 20k reads over 256 hot objects. Reuse spikes; the threshold
	// falls back and the hot set gets promoted.
	for i := 0; i < 20_000; i++ {
		off := int64(i%256) * 4096
		if _, err := f.ReadAt(buf, off); err != nil {
			log.Fatal(err)
		}
	}
	show("after hot loop (128B):")

	// Phase 3: the workload's object size changes to 1 KiB. The 128 B
	// class goes idle; maintenance reassigns its slabs to the free pool,
	// from which the 1 KiB class grows.
	big := make([]byte, 1024)
	for i := 0; i < 40_000; i++ {
		off := int64(i%2048)*8192 + (64 << 20)
		if _, err := f.ReadAt(big, off); err != nil {
			log.Fatal(err)
		}
	}
	show("after size shift (1KiB):")

	fmt.Println()
	fmt.Println(sys.Report())
}
