// Socialgraph: a LinkBench-flavoured graph store, the paper's second
// real-world application (§4.3). Nodes average 87.6 bytes and edges 11.3
// bytes — classic fine-grained objects — accessed with the LinkBench
// operation mix, whose writes exercise Pipette's cache-invalidation path.
package main

import (
	"fmt"
	"log"

	"pipette"
	"pipette/internal/workload"
)

func main() {
	cfg := workload.DefaultSocialGraphConfig()
	cfg.Nodes = 256 << 10 // a quarter-million-node graph
	gen, err := workload.NewSocialGraph(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  gen.FileSize()*2 + (256 << 20),
		PageCacheBytes: 24 << 20,
		FineCacheBytes: 12 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("graph.db", gen.FileSize(), true); err != nil {
		log.Fatal(err)
	}
	f, err := sys.Open("graph.db", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d nodes, %.1f MiB store\n", cfg.Nodes, float64(gen.FileSize())/(1<<20))

	// The paper's maintenance thread, running for real while we serve.
	stop := sys.StartMaintenance(50e6) // 50 ms wall-clock ticks
	defer stop()

	const ops = 100_000
	buf := make([]byte, 4096)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var reads, writes int
	for i := 0; i < ops; i++ {
		req := gen.Next()
		if req.Write {
			if _, err := f.WriteAt(payload[:req.Size], req.Off); err != nil {
				log.Fatalf("op %d: %v", i, err)
			}
			writes++
		} else {
			if _, err := f.ReadAt(buf[:req.Size], req.Off); err != nil {
				log.Fatalf("op %d: %v", i, err)
			}
			reads++
		}
	}
	if err := f.Sync(); err != nil {
		log.Fatal(err)
	}

	rep := sys.Report()
	fmt.Printf("ran %d LinkBench ops (%d reads / %d writes) in %v simulated\n",
		ops, reads, writes, rep.Elapsed)
	fmt.Printf("throughput: %.0f ops/s (virtual)\n", float64(ops)/rep.Elapsed.Seconds())
	fmt.Printf("read traffic %.1f MB for %.1f MB requested\n",
		rep.IO.TrafficMB(), float64(rep.IO.BytesRequested)/(1<<20))
	fmt.Printf("invalidations from the write stream: %d\n", rep.Core.Invalidations)
	fmt.Println()
	fmt.Println(rep)
}
