// Faults: demonstrates the deterministic fault-injection machinery turning
// injected faults into correct-but-slower reads. The profile corrupts the
// first four Info-Area ring records a fine read appends (the device rejects
// them by checksum and the framework re-serves via block I/O) and fails the
// first two writeback commands (the flusher re-issues them). Every byte
// read matches a fault-free twin system; the recovery work shows up only on
// the fault ledger and the virtual clock.
package main

import (
	"bytes"
	"fmt"
	"log"

	"pipette"
)

const profile = "hmb.ring:1#4,vfs.writeback:1#2"

func build(faultProfile string) (*pipette.System, *pipette.File) {
	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  256 << 20,
		PageCacheBytes: 8 << 20,
		FaultProfile:   faultProfile,
		FaultSeed:      0x5eed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("objects", 64<<20, true); err != nil {
		log.Fatal(err)
	}
	f, err := sys.Open("objects", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		log.Fatal(err)
	}
	return sys, f
}

func main() {
	faulty, ff := build(profile)
	clean, cf := build("")

	fmt.Printf("fault profile: %s\n\n", profile)

	// Fine-grained reads: the first four hit a corrupted ring record and
	// fall back to block I/O — detectably slower, never wrong.
	got := make([]byte, 200)
	want := make([]byte, 200)
	for i := 0; i < 6; i++ {
		off := int64(i) * 81920
		if _, err := ff.ReadAt(got, off); err != nil {
			log.Fatalf("faulty read %d: %v", i, err)
		}
		if _, err := cf.ReadAt(want, off); err != nil {
			log.Fatalf("clean read %d: %v", i, err)
		}
		verdict := "identical bytes"
		if !bytes.Equal(got, want) {
			verdict = "MISMATCH"
		}
		fmt.Printf("read %d at %8d: faulty system vs clean system: %s\n", i, off, verdict)
	}

	// A write + fsync: the first two writeback commands report transient
	// failures and are re-issued.
	data := bytes.Repeat([]byte{0xAB}, 8192)
	if _, err := ff.WriteAt(data, 1<<20); err != nil {
		log.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		log.Fatal(err)
	}

	rep := faulty.Report()
	fmt.Printf("\nrecovery counters (faulty system):\n")
	f := rep.Faults
	fmt.Printf("  injected           %d\n", f.Injected)
	fmt.Printf("  ring fallbacks     %d (fine reads re-served via block I/O)\n", f.RingFallbacks)
	fmt.Printf("  writeback retries  %d\n", f.WritebackRetries)
	fmt.Printf("\nvirtual time: faulty %v vs clean %v — recovery costs time, not data\n",
		rep.Elapsed, clean.Report().Elapsed)
}
