// Kvstore: a log-structured key-value store on the simulated Pipette stack.
// Every Get issues an exact-length read — a few hundred bytes, not a 4 KiB
// page — which is precisely the access pattern the fine-grained read path
// serves without amplification. The demo writes a small user table, reads it
// back, survives a simulated restart, and prints what moved over the wire.
package main

import (
	"fmt"
	"log"

	"pipette"
)

func main() {
	// The page cache is kept tiny (16 pages) so most Gets actually reach
	// the device — and take the byte-granular path instead of pulling in
	// whole pages.
	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  512 << 20,
		PageCacheBytes: 64 << 10,
		FineCacheBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	kv, err := sys.OpenKV(pipette.KVOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// A small user table: values are a few hundred bytes, far below the
	// 4 KiB page.
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("user%04d", i)
		profile := fmt.Sprintf("{\"id\":%d,\"name\":\"user %d\",\"bio\":%q}",
			i, i, "storage enthusiast with a fondness for small reads")
		if err := kv.Put(key, []byte(profile)); err != nil {
			log.Fatal(err)
		}
	}

	before := sys.Now()
	val, err := kv.Get("user0042")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get user0042 -> %d bytes in %v simulated: %s\n\n", len(val), sys.Now()-before, val)

	// Range scan: keys are served in lexicographic order.
	fmt.Println("first 3 users at or after user0100:")
	if err := kv.Scan("user0100", 3, func(key string, value []byte) bool {
		fmt.Printf("  %s (%d bytes)\n", key, len(value))
		return true
	}); err != nil {
		log.Fatal(err)
	}

	if err := kv.Delete("user0042"); err != nil {
		log.Fatal(err)
	}

	// Simulated restart: close the store, reopen, and recover the index by
	// scanning the value-log segments. The delete survives.
	if err := kv.Close(); err != nil {
		log.Fatal(err)
	}
	kv, err = sys.OpenKV(pipette.KVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := kv.Get("user0042"); err != pipette.ErrNotFound {
		log.Fatalf("deleted key after restart: %v", err)
	}
	fmt.Printf("\nafter restart: %d users recovered, user0042 stays deleted\n", kv.Len())

	st := kv.Stats()
	fmt.Printf("recovery replayed %d records\n\n", st.Recovered)
	fmt.Println(sys.Report())
}
