// Quickstart: build a simulated Pipette system, read a few hundred bytes at
// a time from a large preloaded file, and watch the fine-grained read path
// at work — first reads fetch only the demanded bytes from flash, repeats
// hit the host-side fine-grained read cache.
package main

import (
	"fmt"
	"log"

	"pipette"
)

func main() {
	// A 1 GiB simulated SSD with a 64 MiB page cache and an 8 MiB
	// fine-grained read cache.
	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  1 << 30,
		PageCacheBytes: 64 << 20,
		FineCacheBytes: 8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 256 MiB dataset, preloaded with deterministic content.
	const size = 256 << 20
	if err := sys.CreateFile("objects.db", size, true); err != nil {
		log.Fatal(err)
	}

	// O_FINE_GRAINED: small reads take the byte-granular path.
	f, err := sys.Open("objects.db", pipette.ReadWrite|pipette.FineGrained)
	if err != nil {
		log.Fatal(err)
	}

	// Read 200 distinct 128-byte objects, then read them all again.
	buf := make([]byte, 128)
	for round := 1; round <= 2; round++ {
		before := sys.Now()
		for i := 0; i < 200; i++ {
			off := int64(i) * 1_000_003 // scattered, unaligned offsets
			if _, err := f.ReadAt(buf, off); err != nil {
				log.Fatalf("read %d: %v", i, err)
			}
		}
		fmt.Printf("round %d: 200 reads took %v of simulated time\n",
			round, sys.Now()-before)
	}

	// Writes invalidate overlapping cache entries (consistency, §3.1.3).
	if _, err := f.WriteAt([]byte("fresh data"), 1_000_003); err != nil {
		log.Fatal(err)
	}
	if _, err := f.ReadAt(buf[:10], 1_000_003); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after write: %q\n\n", buf[:10])

	fmt.Println(sys.Report())
}
