// Recommender: an embedding-lookup service in the style of the paper's
// first real-world application (§4.3). Sparse-feature embedding tables live
// on the simulated SSD; each inference gathers one 128-byte vector per
// feature. The fine-grained read path turns each lookup into a 128 B
// transfer instead of a 4 KiB page fault, and the adaptive cache keeps the
// hot vectors in host memory.
package main

import (
	"fmt"
	"log"

	"pipette"
	"pipette/internal/workload"
)

func main() {
	cfg := workload.DefaultRecommenderConfig()
	cfg.TableBytes = 512 << 20 // half-GiB embedding store for a quick demo
	cfg.HotWindow = 32 << 10
	gen, err := workload.NewRecommender(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  gen.FileSize() + (256 << 20),
		PageCacheBytes: 48 << 20,
		FineCacheBytes: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("embeddings.tbl", gen.FileSize(), true); err != nil {
		log.Fatal(err)
	}
	f, err := sys.Open("embeddings.tbl", pipette.FineGrained)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("embedding store: %d tables, %.1f MiB on SSD\n",
		cfg.Tables, float64(gen.FileSize())/(1<<20))

	// Serve inferences: each gathers one embedding per sparse feature.
	const inferences = 4000
	vec := make([]byte, cfg.VectorSize)
	for i := 0; i < inferences; i++ {
		for t := 0; t < cfg.Tables; t++ {
			req := gen.Next()
			if _, err := f.ReadAt(vec, req.Off); err != nil {
				log.Fatalf("inference %d: %v", i, err)
			}
		}
	}

	rep := sys.Report()
	lookups := inferences * cfg.Tables
	fmt.Printf("served %d inferences (%d embedding lookups) in %v simulated\n",
		inferences, lookups, rep.Elapsed)
	fmt.Printf("mean lookup latency: %.1f us\n",
		rep.Elapsed.Micros()/float64(lookups))
	fmt.Printf("data requested %.1f MB, transferred %.1f MB (amplification %.2fx)\n",
		float64(rep.IO.BytesRequested)/(1<<20), rep.IO.TrafficMB(), rep.IO.ReadAmplification())
	fmt.Printf("fine cache hit ratio: %.1f%% using %.1f MB\n",
		rep.FineCache.HitRatio()*100, float64(rep.FineCacheMemoryBytes)/(1<<20))
}
