// Searchengine: query processing over an on-flash inverted index, the
// third application class the paper's introduction motivates (WiSER,
// FAST'20). Each query reads a 16-byte term entry plus a posting list per
// term; entries and short posting lists ride Pipette's byte-granular path
// while long lists fall back to the block path — the Dispatcher splitting
// traffic by size is the point of this example.
package main

import (
	"fmt"
	"log"

	"pipette"
	"pipette/internal/workload"
)

func main() {
	cfg := workload.DefaultSearchEngineConfig()
	cfg.Terms = 1 << 18 // quarter-million-term vocabulary
	gen, err := workload.NewSearchEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := pipette.New(pipette.Options{
		CapacityBytes:  gen.FileSize() + gen.FileSize()/2 + (256 << 20),
		PageCacheBytes: 32 << 20,
		FineCacheBytes: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("index.bin", gen.FileSize(), true); err != nil {
		log.Fatal(err)
	}
	f, err := sys.Open("index.bin", pipette.FineGrained)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inverted index: %d terms, %.1f MiB on SSD\n",
		cfg.Terms, float64(gen.FileSize())/(1<<20))

	const queries = 20_000
	reqsPerQuery := 2 * cfg.TermsPerQuery // entry + postings per term
	buf := make([]byte, cfg.MaxPosting)
	for q := 0; q < queries; q++ {
		for r := 0; r < reqsPerQuery; r++ {
			req := gen.Next()
			if _, err := f.ReadAt(buf[:req.Size], req.Off); err != nil {
				log.Fatalf("query %d: %v", q, err)
			}
		}
	}

	rep := sys.Report()
	fmt.Printf("served %d queries (%d index reads) in %v simulated — %.0f queries/s\n",
		queries, queries*reqsPerQuery, rep.Elapsed,
		float64(queries)/rep.Elapsed.Seconds())
	fmt.Printf("requested %.1f MB, transferred %.1f MB\n",
		float64(rep.IO.BytesRequested)/(1<<20), rep.IO.TrafficMB())
	fmt.Printf("fine path took %d reads (%d went block-path for long posting lists)\n",
		rep.Core.FineReads, rep.Core.Declined)
	fmt.Printf("fine cache: %.1f%% hit, %.1f MB resident\n",
		rep.FineCache.HitRatio()*100, float64(rep.FineCacheMemoryBytes)/(1<<20))
}
