package pipette

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// tracedSystem runs a small mixed read workload with a Recorder and Sampler
// installed, exactly as cmd/pipette-sim does with -trace-out/-stats-out.
func tracedSystem(t *testing.T) (*telemetry.Recorder, *telemetry.Sampler) {
	t.Helper()
	sys, err := New(Options{
		CapacityBytes:  64 << 20,
		PageCacheBytes: 2 << 20,
		FineCacheBytes: 2 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	const fileSize = 8 << 20
	if err := sys.CreateFile("data", fileSize, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	sys.SetTracer(rec)
	sampler, err := telemetry.NewSampler(100*sim.Microsecond, sys.Probes())
	if err != nil {
		t.Fatal(err)
	}

	rng := sim.NewRNG(7)
	small := make([]byte, 128)
	large := make([]byte, 4096)
	for i := 0; i < 2000; i++ {
		buf := small
		if i%2 == 0 {
			buf = large
		}
		off := int64(rng.Uint64n(fileSize/4096)) * 4096
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		sampler.Tick(sys.Now())
	}
	return rec, sampler
}

// TestSystemTraceExport validates the full pipeline the CLI flags drive:
// the exported trace is well-formed Chrome trace-event JSON, the sampled
// CSV carries the promised series, and the breakdown spans host and device
// layers.
func TestSystemTraceExport(t *testing.T) {
	rec, sampler := tracedSystem(t)

	// --- Chrome trace-event JSON ---
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	tracks := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("event %d: complete event without dur: %v", i, ev)
			}
		case "i", "M":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d: missing name", i)
		}
		if ph == "M" {
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				tracks[args["name"].(string)] = true
			}
		}
	}
	for _, want := range []string{"vfs", "nvme", "ssd"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (have %v)", want, tracks)
		}
	}
	hasNAND := false
	for tr := range tracks {
		if strings.HasPrefix(tr, "nand/") {
			hasNAND = true
		}
	}
	if !hasNAND {
		t.Errorf("trace has no per-die/channel NAND tracks (have %v)", tracks)
	}

	// --- time-series CSV ---
	var csvBuf bytes.Buffer
	if err := sampler.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatalf("stats output is not valid CSV: %v", err)
	}
	if len(recs) < 2 {
		t.Fatalf("stats CSV has %d rows, want header + samples", len(recs))
	}
	header := recs[0]
	if len(header) < 4 { // time_us + >=3 series
		t.Fatalf("stats CSV has %d columns, want >= 4: %v", len(header), header)
	}
	want := map[string]bool{"read_amp": false, "pc_hit_ratio": false, "ch0_busy": false}
	for _, col := range header {
		if _, ok := want[col]; ok {
			want[col] = true
		}
	}
	for col, seen := range want {
		if !seen {
			t.Errorf("stats CSV missing series %q (header %v)", col, header)
		}
	}

	// --- per-phase breakdown ---
	tbl := rec.Breakdown()
	hostPhases, devicePhases := 0, 0
	for _, row := range tbl.Rows {
		phase := row[0]
		switch {
		case strings.HasPrefix(phase, "vfs/"), strings.HasPrefix(phase, "fine/"),
			strings.HasPrefix(phase, "block/"), strings.HasPrefix(phase, "pagecache/"):
			hostPhases++
		case strings.HasPrefix(phase, "nvme/"), strings.HasPrefix(phase, "ssd/"),
			strings.HasPrefix(phase, "ftl/"), strings.HasPrefix(phase, "nand/"):
			devicePhases++
		}
	}
	if hostPhases+devicePhases < 5 {
		t.Fatalf("breakdown has %d phases, want >= 5:\n%s", hostPhases+devicePhases, tbl.Render())
	}
	if hostPhases == 0 || devicePhases == 0 {
		t.Fatalf("breakdown must span host and device (host=%d device=%d):\n%s",
			hostPhases, devicePhases, tbl.Render())
	}
}
