package pipette_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pipette"
	"pipette/internal/telemetry"
)

// TestRegisterMetrics drives a faulted System with file and KV traffic and
// checks the registry exposes non-zero series in all four metric families.
func TestRegisterMetrics(t *testing.T) {
	sys, err := pipette.New(pipette.Options{
		CapacityBytes: 64 << 20,
		FaultProfile:  "nand.read:rber*50,hmb.ring:0.05",
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(telemetry.L("job", "test"))
	sys.RegisterMetrics(reg)

	if err := sys.CreateFile("data", 4<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", pipette.ReadOnly|pipette.FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i := int64(0); i < 400; i++ {
		_, err := f.ReadAt(buf, (i*7919)%(4<<20-128))
		if err != nil && !errors.Is(err, pipette.ErrUncorrectable) {
			t.Fatal(err)
		}
	}
	store, err := sys.OpenKV(pipette.KVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%03d", i)
		if err := store.Put(key, []byte(strings.Repeat("v", 64))); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Get(key); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	exposition := out.String()
	for _, family := range []string{"ssd_reads_total", "cache_accesses_total", "kv_ops_total", "fault_injected_total"} {
		nonZero := false
		for _, line := range strings.Split(exposition, "\n") {
			if strings.HasPrefix(line, family) && !strings.HasSuffix(line, " 0") {
				nonZero = true
				break
			}
		}
		if !nonZero {
			t.Errorf("family %s has no non-zero series:\n%s", family, exposition)
		}
	}
	if !strings.Contains(exposition, `job="test"`) {
		t.Errorf("constant label missing from exposition:\n%s", exposition)
	}
}
