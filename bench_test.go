package pipette

// Top-level benchmarks: one testing.B target per paper table/figure (run
// them with `go test -bench=. -benchmem`), plus micro-benchmarks of the
// public read paths. The figure/table benchmarks wrap the same harness
// cmd/pipette-bench uses, at the tiny scale so `go test -bench` stays
// snappy; use the command with -scale quick/full for headline numbers.

import (
	"io"
	"testing"

	"pipette/internal/bench"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// benchScale keeps -bench runs fast while preserving shapes.
func benchScale() bench.Scale { return bench.TinyScale() }

func runExperiment(b *testing.B, name string) {
	b.Helper()
	exp, err := bench.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, benchScale(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Table2 regenerates Figure 6 and Table 2 (synthetic mixes,
// uniform distribution).
func BenchmarkFig6Table2(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Table3 regenerates Figure 7 and Table 3 (synthetic mixes,
// zipfian distribution).
func BenchmarkFig7Table3(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (latency vs request size).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Table4 regenerates Figures 1 and 9 and Table 4 (real
// applications).
func BenchmarkFig9Table4(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkAblation runs the design-choice ablation sweep.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// --- public-API micro benchmarks ------------------------------------------

func benchSystem(b *testing.B, fineCache bool) *File {
	b.Helper()
	sys, err := New(Options{
		CapacityBytes:    512 << 20,
		PageCacheBytes:   32 << 20,
		FineCacheBytes:   8 << 20,
		DisableFineCache: !fineCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.CreateFile("bench.dat", 128<<20, true); err != nil {
		b.Fatal(err)
	}
	f, err := sys.Open("bench.dat", ReadWrite|FineGrained)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFineRead128Hot measures the full stack on cache-friendly 128 B
// reads (the paper's embedding-lookup shape).
func BenchmarkFineRead128Hot(b *testing.B) {
	f := benchSystem(b, true)
	buf := make([]byte, 128)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, int64(i%1024)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFineRead128Cold measures all-miss 128 B reads (every read runs
// the Constructor/Requester/Read-Engine path).
func BenchmarkFineRead128Cold(b *testing.B) {
	f := benchSystem(b, false)
	buf := make([]byte, 128)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, int64(i%30000)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockRead4K measures the conventional 4 KiB path.
func BenchmarkBlockRead4K(b *testing.B) {
	f := benchSystem(b, true)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, int64(i%30000)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrite4K measures page-aligned writes through the page cache.
func BenchmarkWrite4K(b *testing.B) {
	f := benchSystem(b, true)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(data, int64(i%8192)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingOverhead quantifies the cost of the telemetry seams on
// the full read stack. The "off" case is the default no-op tracer every
// layer ships with: each instrumentation site is one Enabled() call on a
// static interface value, so "off" must stay within noise (<2%) of an
// uninstrumented build — compare against BenchmarkFineRead128Hot, which is
// the same loop without SetTracer ever having been called. The "on" case
// records every span and bounds the worst-case cost of -trace-out.
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		f := benchSystem(b, true)
		if traced {
			f.sys.SetTracer(telemetry.NewRecorder())
		} else {
			f.sys.SetTracer(nil) // explicit no-op default
		}
		buf := make([]byte, 128)
		b.SetBytes(128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAt(buf, int64(i%1024)*4096); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkWorkloadGenerators measures request-generation overhead (it must
// be negligible next to simulated I/O).
func BenchmarkWorkloadGenerators(b *testing.B) {
	gens := map[string]workload.Generator{}
	syn, err := workload.NewSynthetic(workload.Mixes(1<<30, 4096, workload.Zipfian, 1)[3])
	if err != nil {
		b.Fatal(err)
	}
	gens["synthetic"] = syn
	reccfg := workload.DefaultRecommenderConfig()
	reccfg.TableBytes = 256 << 20
	rec, err := workload.NewRecommender(reccfg)
	if err != nil {
		b.Fatal(err)
	}
	gens["recommender"] = rec
	sgcfg := workload.DefaultSocialGraphConfig()
	sgcfg.Nodes = 1 << 18
	sg, err := workload.NewSocialGraph(sgcfg)
	if err != nil {
		b.Fatal(err)
	}
	gens["socialgraph"] = sg
	for name, gen := range gens {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = gen.Next()
			}
		})
	}
}

// BenchmarkSensitivity runs the arena-size sweep and search-engine
// experiments (beyond the paper).
func BenchmarkSensitivity(b *testing.B) { runExperiment(b, "sensitivity") }
