package pipette

import (
	"pipette/internal/index"
	"pipette/internal/kv"
)

// ErrNotFound reports a KV lookup of an absent key.
var ErrNotFound = kv.ErrNotFound

// KVOptions configures a key-value store on a System. Zero values take
// defaults.
type KVOptions struct {
	// NamePrefix prefixes the store's segment files (default "kv/seg-").
	// Distinct prefixes give independent stores on one System.
	NamePrefix string
	// SegmentBytes sets the value-log segment size (default 4 MiB).
	SegmentBytes int64
	// BlockReads forces Gets through the ordinary page-granular read path
	// instead of O_FINE_GRAINED — the baseline the paper compares against.
	BlockReads bool
	// Index selects the index engine: "hash" (default, in-memory), "btree"
	// (paged B+-tree on the store's filesystem), or "lsm" (bloom-filtered
	// sorted runs). The on-device engines add sub-page index reads to every
	// lookup, following the same fine/block setting as value reads.
	Index string
}

// KV is a log-structured key-value store persisted on the System's
// filesystem: an append-only value log with an in-memory index, where every
// Get issues an exact-length read — the access pattern Pipette's
// byte-granular path is built for. Safe for concurrent use; operations
// advance the System's virtual clock.
type KV struct {
	sys   *System
	store *kv.Store
}

// OpenKV opens (or recovers) a key-value store on the System. If segment
// files from an earlier store with the same prefix exist, the index is
// rebuilt from them: puts and deletes made before the last Sync reappear.
func (s *System) OpenKV(opts KVOptions) (*KV, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kind, err := index.ParseKind(opts.Index)
	if err != nil {
		return nil, err
	}
	store, done, err := kv.Open(s.clock.Now(), kv.VFSBackend{V: s.v}, kv.Config{
		NamePrefix:   opts.NamePrefix,
		SegmentBytes: opts.SegmentBytes,
		FineReads:    !opts.BlockReads,
		Index:        index.Config{Kind: kind},
	})
	if err != nil {
		return nil, err
	}
	s.clock.AdvanceTo(done)
	k := &KV{sys: s, store: store}
	s.kvs = append(s.kvs, store)
	return k, nil
}

// Put writes key = value.
func (k *KV) Put(key string, value []byte) error {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	done, err := k.store.Put(s.clock.Now(), key, value)
	s.clock.AdvanceTo(done)
	return err
}

// Get returns key's value, or ErrNotFound.
func (k *KV) Get(key string) ([]byte, error) {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	val, done, err := k.store.Get(s.clock.Now(), key, nil)
	s.clock.AdvanceTo(done)
	if err != nil {
		return nil, err
	}
	return val, nil
}

// Delete removes key; ErrNotFound if absent.
func (k *KV) Delete(key string) error {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	done, err := k.store.Delete(s.clock.Now(), key)
	s.clock.AdvanceTo(done)
	return err
}

// Scan visits up to n keys >= start in lexicographic order; fn returning
// false stops early.
func (k *KV) Scan(start string, n int, fn func(key string, value []byte) bool) error {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	done, err := k.store.Scan(s.clock.Now(), start, n, fn)
	s.clock.AdvanceTo(done)
	return err
}

// Sync makes everything written so far recoverable.
func (k *KV) Sync() error {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	done, err := k.store.Sync(s.clock.Now())
	s.clock.AdvanceTo(done)
	return err
}

// Close syncs and releases the store's file handles. The store stays on
// disk; OpenKV with the same prefix recovers it.
func (k *KV) Close() error {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	done, err := k.store.Close(s.clock.Now())
	s.clock.AdvanceTo(done)
	for i, st := range s.kvs {
		if st == k.store {
			s.kvs = append(s.kvs[:i], s.kvs[i+1:]...)
			break
		}
	}
	return err
}

// Len reports the number of live keys.
func (k *KV) Len() int {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return k.store.Len()
}

// KVStats mirrors the store's counters.
type KVStats = kv.Stats

// Stats returns a snapshot of the store's counters.
func (k *KV) Stats() KVStats {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return k.store.Stats()
}

// KVIndexStats mirrors the index engine's counters (node reads, bloom
// checks, cache hits, ...).
type KVIndexStats = index.Stats

// IndexKind reports which index engine the store runs on.
func (k *KV) IndexKind() string {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(k.store.IndexKind())
}

// IndexStats returns a snapshot of the index engine's counters.
func (k *KV) IndexStats() KVIndexStats {
	s := k.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return k.store.IndexStats()
}

// tickKVs runs one compaction round per open store; called (with the System
// lock held) from MaintenanceTick.
func (s *System) tickKVs() {
	for _, st := range s.kvs {
		if _, done, err := st.MaintenanceTick(s.clock.Now()); err == nil {
			s.clock.AdvanceTo(done)
		}
	}
}
