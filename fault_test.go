package pipette

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestFaultRingFallbackReturnsCorrectBytes arms ring corruption on every
// fine read (budget 4): the device rejects the corrupted Info-Area records
// and the framework re-serves each request via block I/O — same bytes as a
// fault-free twin system, with the fallbacks on the ledger.
func TestFaultRingFallbackReturnsCorrectBytes(t *testing.T) {
	mk := func(profile string) (*System, *File) {
		sys, err := New(Options{CapacityBytes: 64 << 20, FaultProfile: profile})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.CreateFile("data", 8<<20, true); err != nil {
			t.Fatal(err)
		}
		f, err := sys.Open("data", FineGrained)
		if err != nil {
			t.Fatal(err)
		}
		return sys, f
	}
	faulty, ff := mk("hmb.ring:1#4")
	clean, cf := mk("")

	got := make([]byte, 128)
	want := make([]byte, 128)
	for i := 0; i < 8; i++ {
		off := int64(i) * 40960
		if _, err := ff.ReadAt(got, off); err != nil {
			t.Fatalf("faulty read %d: %v", i, err)
		}
		if _, err := cf.ReadAt(want, off); err != nil {
			t.Fatalf("clean read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d: corrupted ring entry changed returned bytes", i)
		}
	}

	r := faulty.Report()
	if r.Faults == nil {
		t.Fatal("armed profile produced a nil fault report")
	}
	if r.Faults.RingFallbacks != 4 {
		t.Fatalf("RingFallbacks = %d, want 4 (budget)", r.Faults.RingFallbacks)
	}
	if !strings.Contains(r.String(), "faults") {
		t.Fatalf("report misses faults line:\n%s", r)
	}
	if cr := clean.Report(); cr.Faults != nil {
		t.Fatal("empty profile produced a fault report")
	}
}

// TestFaultUncorrectableSurfaces arms bit errors on every NAND page read:
// the ~2% of severity draws below the ECC ladder's floor must surface as
// ErrUncorrectable at the public API, never as wrong bytes.
func TestFaultUncorrectableSurfaces(t *testing.T) {
	sys, err := New(Options{CapacityBytes: 64 << 20, FaultProfile: "nand.read:1", FaultSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateFile("data", 4<<20, true); err != nil {
		t.Fatal(err)
	}
	f, err := sys.Open("data", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var failed int
	for page := int64(0); page < 1024; page++ {
		_, err := f.ReadAt(buf, page*4096)
		if err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("page %d: %v (not classifiable as ErrUncorrectable)", page, err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no uncorrectable error in 1024 always-faulted page reads")
	}
	r := sys.Report()
	if r.Faults == nil || r.Faults.Uncorrectable != uint64(failed) {
		t.Fatalf("report uncorrectable mismatch: got %+v, observed %d", r.Faults, failed)
	}
	if r.Faults.ECCRetries == 0 {
		t.Fatal("ECC ladder charged no retries")
	}
}
