module pipette

go 1.22
